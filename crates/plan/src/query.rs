//! The logical query specification.

use crate::{AggFunc, PhysNode, TableSet};
use pop_expr::{CmpOp, Expr};
use pop_types::{ColId, PopError, PopResult};

/// A reference to a base table within a query. The position of the
/// reference in [`QuerySpec::tables`] is its *query table index*; the same
/// base table may appear more than once (self-join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Base table name in the catalog.
    pub table: String,
}

/// An equi-join predicate `left = right` between two query tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPred {
    /// Column on one side.
    pub left: ColId,
    /// Column on the other side.
    pub right: ColId,
}

impl JoinPred {
    /// The pair of query tables this predicate connects.
    pub fn tables(&self) -> (usize, usize) {
        (self.left.table, self.right.table)
    }

    /// Given one side's table set, return (key in that set, key in the
    /// other set) if the predicate spans the boundary.
    pub fn split(&self, side: TableSet) -> Option<(ColId, ColId)> {
        let l_in = side.contains(self.left.table);
        let r_in = side.contains(self.right.table);
        match (l_in, r_in) {
            (true, false) => Some((self.left, self.right)),
            (false, true) => Some((self.right, self.left)),
            _ => None,
        }
    }

    /// Canonical fingerprint (orientation-insensitive).
    pub fn fingerprint(&self) -> String {
        let (a, b) = if (self.left.table, self.left.col) <= (self.right.table, self.right.col) {
            (self.left, self.right)
        } else {
            (self.right, self.left)
        };
        format!("j({a}={b})")
    }
}

/// GROUP BY specification. Aggregate functions are shared with the
/// physical plan ([`AggFunc`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Grouping keys.
    pub group_by: Vec<ColId>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggFunc>,
}

/// A correlated `EXISTS` / `NOT EXISTS` clause of the classic
/// decorrelatable form:
/// `EXISTS (SELECT * FROM inner WHERE inner.link_col = <outer column> AND pred)`.
///
/// Executed as a semi/anti probe against the inner table's index, applied
/// after the main join (the inner table does not participate in join
/// enumeration — a documented simplification).
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsClause {
    /// Inner (probed) table name.
    pub table: String,
    /// Column of the outer query the clause correlates on.
    pub outer_col: ColId,
    /// Inner column equated with `outer_col` (must be indexed).
    pub inner_col: usize,
    /// Extra predicate on the inner table's row (columns use table index
    /// 0 = the inner table itself).
    pub pred: Option<Expr>,
    /// `NOT EXISTS` when true.
    pub negated: bool,
}

/// A HAVING-style predicate over an output position of the aggregate row
/// (`group keys ++ aggregate values`): `output[pos] OP value`.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingPred {
    /// Output position (into keys ++ aggs).
    pub pos: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparand.
    pub value: pop_types::Value,
}

/// ORDER BY key: a position into the final output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// Output position.
    pub pos: usize,
    /// Descending?
    pub desc: bool,
}

/// A complete logical query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpec {
    /// Table references; position = query table index.
    pub tables: Vec<TableRef>,
    /// Local (single-table) predicates: `(query table index, expr)`. The
    /// expression's column references must all name that table.
    pub local_preds: Vec<(usize, Expr)>,
    /// Equi-join predicates.
    pub join_preds: Vec<JoinPred>,
    /// Output columns (before aggregation). Empty means "all columns of
    /// all tables".
    pub projection: Vec<ColId>,
    /// Optional aggregation; its keys/args reference base columns.
    pub aggregate: Option<Aggregate>,
    /// Correlated EXISTS / NOT EXISTS clauses (conjunctive), applied
    /// after the main join.
    pub exists: Vec<ExistsClause>,
    /// HAVING predicates over the aggregate output (conjunctive).
    pub having: Vec<HavingPred>,
    /// Optional ordering of the final output.
    pub order_by: Vec<OrderKey>,
    /// Keep only the first `n` output rows (applied after ORDER BY).
    pub limit: Option<usize>,
    /// Optional side effect: insert the query result into this table.
    pub side_effect: Option<String>,
}

impl QuerySpec {
    /// All query table indexes as a set.
    pub fn all_tables(&self) -> TableSet {
        TableSet::first_n(self.tables.len())
    }

    /// Local predicates attached to table `idx`.
    pub fn local_preds_of(&self, idx: usize) -> Vec<&Expr> {
        self.local_preds
            .iter()
            .filter(|(t, _)| *t == idx)
            .map(|(_, e)| e)
            .collect()
    }

    /// Join predicates fully contained in `set`.
    pub fn join_preds_within(&self, set: TableSet) -> Vec<&JoinPred> {
        self.join_preds
            .iter()
            .filter(|j| set.contains(j.left.table) && set.contains(j.right.table))
            .collect()
    }

    /// Join predicates connecting `left` to `right` (disjoint sets).
    pub fn join_preds_between(&self, left: TableSet, right: TableSet) -> Vec<&JoinPred> {
        self.join_preds
            .iter()
            .filter(|j| {
                let (a, b) = j.tables();
                (left.contains(a) && right.contains(b)) || (left.contains(b) && right.contains(a))
            })
            .collect()
    }

    /// True iff joining `left` and `right` is connected by at least one
    /// join predicate (avoids Cartesian products during enumeration).
    pub fn connected(&self, left: TableSet, right: TableSet) -> bool {
        !self.join_preds_between(left, right).is_empty()
    }

    /// Structural validation: table count, predicate column scoping, join
    /// graph connectivity.
    pub fn validate(&self) -> PopResult<()> {
        let n = self.tables.len();
        if n == 0 {
            return Err(PopError::InvalidQuery("query references no tables".into()));
        }
        if n > 64 {
            return Err(PopError::InvalidQuery(format!(
                "query references {n} tables; max is 64"
            )));
        }
        for (t, e) in &self.local_preds {
            if *t >= n {
                return Err(PopError::InvalidQuery(format!(
                    "local predicate references table index {t}, but query has {n} tables"
                )));
            }
            for c in e.columns_used() {
                if c.table != *t {
                    return Err(PopError::InvalidQuery(format!(
                        "local predicate on table {t} references column {c} of another table"
                    )));
                }
            }
        }
        for j in &self.join_preds {
            let (a, b) = j.tables();
            if a >= n || b >= n {
                return Err(PopError::InvalidQuery(format!(
                    "join predicate references table index out of range: {a}, {b}"
                )));
            }
            if a == b {
                return Err(PopError::InvalidQuery(format!(
                    "join predicate joins table {a} to itself; use a local predicate"
                )));
            }
        }
        for e in &self.exists {
            if e.outer_col.table >= n {
                return Err(PopError::InvalidQuery(format!(
                    "EXISTS clause correlates on out-of-range table {}",
                    e.outer_col.table
                )));
            }
            for c in e.pred.iter().flat_map(pop_expr::Expr::columns_used) {
                if c.table != 0 {
                    return Err(PopError::InvalidQuery(
                        "EXISTS inner predicate must reference the inner table as table 0".into(),
                    ));
                }
            }
        }
        if !self.having.is_empty() && self.aggregate.is_none() {
            return Err(PopError::InvalidQuery(
                "HAVING requires an aggregation".into(),
            ));
        }
        // Connectivity check: BFS over the join graph.
        if n > 1 {
            let mut reached = TableSet::single(0);
            let mut frontier = vec![0usize];
            while let Some(t) = frontier.pop() {
                for j in &self.join_preds {
                    let (a, b) = j.tables();
                    let next = if a == t {
                        b
                    } else if b == t {
                        a
                    } else {
                        continue;
                    };
                    if !reached.contains(next) {
                        reached = reached.with(next);
                        frontier.push(next);
                    }
                }
            }
            if reached.len() != n {
                return Err(PopError::InvalidQuery(
                    "join graph is disconnected (Cartesian products are not supported)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`QuerySpec`].
///
/// ```
/// use pop_plan::QueryBuilder;
/// use pop_expr::{CmpOp, Expr};
///
/// let (q, _c, _o) = {
///     let mut b = QueryBuilder::new();
///     let c = b.table("customer");
///     let o = b.table("orders");
///     b.filter(c, Expr::col(c, 2).eq(Expr::lit(5i64)));
///     b.join(c, 0, o, 1);
///     b.project(&[(o, 0), (c, 1)]);
///     (b.build().unwrap(), c, o)
/// };
/// assert_eq!(q.tables.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    spec: QuerySpec,
}

impl QueryBuilder {
    /// Start an empty query.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    /// Add a table reference; returns its query table index.
    pub fn table(&mut self, name: impl Into<String>) -> usize {
        self.spec.tables.push(TableRef { table: name.into() });
        self.spec.tables.len() - 1
    }

    /// Attach a local predicate to table `idx`.
    pub fn filter(&mut self, idx: usize, expr: Expr) -> &mut Self {
        self.spec.local_preds.push((idx, expr));
        self
    }

    /// Add an equi-join `t1.c1 = t2.c2`.
    pub fn join(&mut self, t1: usize, c1: usize, t2: usize, c2: usize) -> &mut Self {
        self.spec.join_preds.push(JoinPred {
            left: ColId::new(t1, c1),
            right: ColId::new(t2, c2),
        });
        self
    }

    /// Set the projection as `(table, column)` pairs.
    pub fn project(&mut self, cols: &[(usize, usize)]) -> &mut Self {
        self.spec.projection = cols.iter().map(|(t, c)| ColId::new(*t, *c)).collect();
        self
    }

    /// Group by the given columns with the given aggregates.
    pub fn aggregate(&mut self, group_by: &[(usize, usize)], aggs: Vec<AggFunc>) -> &mut Self {
        self.spec.aggregate = Some(Aggregate {
            group_by: group_by.iter().map(|(t, c)| ColId::new(*t, *c)).collect(),
            aggs,
        });
        self
    }

    /// Order the final output by position `pos`.
    pub fn order_by(&mut self, pos: usize, desc: bool) -> &mut Self {
        self.spec.order_by.push(OrderKey { pos, desc });
        self
    }

    /// Add `EXISTS (SELECT * FROM table WHERE table[inner_col] =
    /// outer[outer] AND pred)`.
    pub fn exists(
        &mut self,
        table: impl Into<String>,
        outer: (usize, usize),
        inner_col: usize,
        pred: Option<Expr>,
    ) -> &mut Self {
        self.spec.exists.push(ExistsClause {
            table: table.into(),
            outer_col: ColId::new(outer.0, outer.1),
            inner_col,
            pred,
            negated: false,
        });
        self
    }

    /// Add `NOT EXISTS (...)`; see [`QueryBuilder::exists`].
    pub fn not_exists(
        &mut self,
        table: impl Into<String>,
        outer: (usize, usize),
        inner_col: usize,
        pred: Option<Expr>,
    ) -> &mut Self {
        self.spec.exists.push(ExistsClause {
            table: table.into(),
            outer_col: ColId::new(outer.0, outer.1),
            inner_col,
            pred,
            negated: true,
        });
        self
    }

    /// Add a HAVING predicate: `output[pos] OP value`.
    pub fn having(
        &mut self,
        pos: usize,
        op: CmpOp,
        value: impl Into<pop_types::Value>,
    ) -> &mut Self {
        self.spec.having.push(HavingPred {
            pos,
            op,
            value: value.into(),
        });
        self
    }

    /// Keep only the first `n` output rows.
    pub fn limit(&mut self, n: usize) -> &mut Self {
        self.spec.limit = Some(n);
        self
    }

    /// Insert the result rows into `table` (side effect).
    pub fn insert_into(&mut self, table: impl Into<String>) -> &mut Self {
        self.spec.side_effect = Some(table.into());
        self
    }

    /// Validate and return the spec.
    pub fn build(self) -> PopResult<QuerySpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Count plan nodes in a physical plan (used by reports/tests).
pub fn node_count(plan: &PhysNode) -> usize {
    let mut n = 1;
    for c in plan.children() {
        n += node_count(c);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_query() -> QuerySpec {
        let mut b = QueryBuilder::new();
        let c = b.table("customer");
        let o = b.table("orders");
        b.join(c, 0, o, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_spec() {
        let q = two_table_query();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.join_preds.len(), 1);
        assert_eq!(q.all_tables(), TableSet::first_n(2));
    }

    #[test]
    fn empty_query_rejected() {
        assert!(QueryBuilder::new().build().is_err());
    }

    #[test]
    fn disconnected_join_graph_rejected() {
        let mut b = QueryBuilder::new();
        b.table("a");
        b.table("b");
        assert!(b.build().is_err());
    }

    #[test]
    fn self_join_pred_rejected() {
        let mut b = QueryBuilder::new();
        let a = b.table("a");
        b.join(a, 0, a, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn cross_table_local_pred_rejected() {
        let mut b = QueryBuilder::new();
        let a = b.table("a");
        let c = b.table("b");
        b.join(a, 0, c, 0);
        b.filter(a, Expr::col(c, 0).eq(Expr::lit(1i64)));
        assert!(b.build().is_err());
    }

    #[test]
    fn join_pred_helpers() {
        let q = two_table_query();
        let left = TableSet::single(0);
        let right = TableSet::single(1);
        assert!(q.connected(left, right));
        assert_eq!(q.join_preds_between(left, right).len(), 1);
        assert_eq!(q.join_preds_within(q.all_tables()).len(), 1);
        assert_eq!(q.join_preds_within(left).len(), 0);
        let j = q.join_preds[0];
        let (k_in, k_out) = j.split(left).unwrap();
        assert_eq!(k_in, ColId::new(0, 0));
        assert_eq!(k_out, ColId::new(1, 1));
        assert!(j.split(q.all_tables()).is_none());
    }

    #[test]
    fn join_pred_fingerprint_orientation_insensitive() {
        let a = JoinPred {
            left: ColId::new(0, 1),
            right: ColId::new(2, 3),
        };
        let b = JoinPred {
            left: ColId::new(2, 3),
            right: ColId::new(0, 1),
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn local_preds_of_filters_by_table() {
        let mut b = QueryBuilder::new();
        let c = b.table("customer");
        let o = b.table("orders");
        b.join(c, 0, o, 1);
        b.filter(c, Expr::col(c, 2).eq(Expr::lit(5i64)));
        b.filter(o, Expr::col(o, 0).gt(Expr::lit(1i64)));
        b.filter(c, Expr::col(c, 3).lt(Expr::lit(9i64)));
        let q = b.build().unwrap();
        assert_eq!(q.local_preds_of(c).len(), 2);
        assert_eq!(q.local_preds_of(o).len(), 1);
    }
}
