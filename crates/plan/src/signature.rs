//! Canonical subplan signatures.
//!
//! A signature identifies *what an intermediate result computes*: the set
//! of query tables joined and the predicates applied (all local predicates
//! of the member tables plus all join predicates fully inside the set).
//! Materialized intermediate results are stored in **canonical column
//! order** (ascending query-table index, then ascending column index), so
//! two subplans with the same signature produce identical multisets of
//! rows in identical layouts — regardless of join order or join method.
//!
//! Signatures drive both temp-MV matching and cardinality feedback during
//! re-optimization (§2.3).

use crate::{QuerySpec, TableSet};
use pop_expr::Params;
use pop_types::ColId;

/// Fingerprint of the parameter bindings a query's predicates depend on,
/// or `None` when the query uses no parameter markers.
///
/// Signatures must incorporate bound parameter values: a cardinality fact
/// or materialized view computed under one binding is meaningless under
/// another. (Within a single query execution the binding is fixed, so
/// intra-query matching is unaffected; this matters for LEO-style
/// cross-query learning.)
pub fn params_fingerprint(spec: &QuerySpec, params: &Params) -> Option<String> {
    let mut used: Vec<usize> = spec
        .local_preds
        .iter()
        .flat_map(|(_, e)| e.params_used())
        .collect();
    used.sort_unstable();
    used.dedup();
    if used.is_empty() {
        return None;
    }
    let mut out = String::from("#params");
    for i in used {
        match params.get(i) {
            Ok(v) => out.push_str(&format!("|{i}={v}")),
            Err(_) => out.push_str(&format!("|{i}=?")),
        }
    }
    Some(out)
}

/// [`subplan_signature`] plus the parameter fingerprint, when the query
/// uses markers.
pub fn subplan_signature_with_params(
    spec: &QuerySpec,
    set: TableSet,
    params: Option<&Params>,
) -> String {
    let mut sig = subplan_signature(spec, set);
    if let Some(p) = params {
        if let Some(fp) = params_fingerprint(spec, p) {
            sig.push_str(&fp);
        }
    }
    sig
}

/// Compute the canonical signature of the subplan over `set` within `spec`.
pub fn subplan_signature(spec: &QuerySpec, set: TableSet) -> String {
    let mut parts: Vec<String> = Vec::new();
    for t in set.iter() {
        parts.push(format!("t{}:{}", t, spec.tables[t].table));
    }
    let mut preds: Vec<String> = Vec::new();
    for (t, e) in &spec.local_preds {
        if set.contains(*t) {
            preds.push(format!("p{}:{}", t, e.fingerprint()));
        }
    }
    for j in spec.join_preds_within(set) {
        preds.push(j.fingerprint());
    }
    preds.sort();
    parts.extend(preds);
    parts.join("|")
}

/// Parameter-independent fingerprint of a whole query *template*: the
/// join-graph signature over all tables plus every non-join clause.
/// Unlike [`subplan_signature_with_params`] this never incorporates bound
/// parameter values — two executions of the same prepared statement with
/// different bindings share one fingerprint, which is exactly what a
/// parameterized plan cache keys on (validity-range guards, not the key,
/// decide whether a cached plan fits a binding).
pub fn spec_fingerprint(spec: &QuerySpec) -> String {
    format!(
        "{}||proj:{:?}|agg:{:?}|exists:{:?}|having:{:?}|order:{:?}|limit:{:?}|sink:{:?}",
        subplan_signature(spec, spec.all_tables()),
        spec.projection,
        spec.aggregate,
        spec.exists,
        spec.having,
        spec.order_by,
        spec.limit,
        spec.side_effect,
    )
}

/// The canonical column layout for a materialized subplan over `set`:
/// all columns of the member tables, ascending by query-table index then
/// column index. `col_counts[t]` is the column count of query table `t`.
pub fn canonical_layout(set: TableSet, col_counts: &[usize]) -> Vec<ColId> {
    let mut out = Vec::new();
    for t in set.iter() {
        for c in 0..col_counts[t] {
            out.push(ColId::new(t, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use pop_expr::Expr;

    fn spec() -> QuerySpec {
        let mut b = QueryBuilder::new();
        let a = b.table("alpha");
        let c = b.table("beta");
        let d = b.table("gamma");
        b.join(a, 0, c, 1);
        b.join(c, 2, d, 0);
        b.filter(a, Expr::col(a, 1).eq(Expr::lit(5i64)));
        b.filter(d, Expr::col(d, 1).like("x%"));
        b.build().unwrap()
    }

    #[test]
    fn signature_includes_only_member_predicates() {
        let q = spec();
        let s01 = subplan_signature(&q, TableSet::from_iter([0, 1]));
        assert!(s01.contains("alpha"));
        assert!(s01.contains("beta"));
        assert!(!s01.contains("gamma"));
        // local pred on table 0 included, on table 2 excluded
        assert!(s01.contains("p0:"));
        assert!(!s01.contains("p2:"));
        // join 0-1 included, join 1-2 excluded
        assert!(s01.contains("j(t0.c0=t1.c1)"));
        assert!(!s01.contains("t2.c0"));
    }

    #[test]
    fn signature_is_deterministic() {
        let q = spec();
        let set = TableSet::from_iter([0, 1, 2]);
        assert_eq!(subplan_signature(&q, set), subplan_signature(&q, set));
    }

    #[test]
    fn different_sets_different_signatures() {
        let q = spec();
        assert_ne!(
            subplan_signature(&q, TableSet::from_iter([0, 1])),
            subplan_signature(&q, TableSet::from_iter([1, 2]))
        );
    }

    #[test]
    fn canonical_layout_order() {
        let layout = canonical_layout(TableSet::from_iter([0, 2]), &[2, 5, 3]);
        assert_eq!(
            layout,
            vec![
                ColId::new(0, 0),
                ColId::new(0, 1),
                ColId::new(2, 0),
                ColId::new(2, 1),
                ColId::new(2, 2),
            ]
        );
    }
}
