//! Compact sets of query-table indexes.

use std::fmt;

/// A set of query-table indexes, stored as a 64-bit mask. Queries are
/// limited to 64 table references, far beyond the DP enumeration horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TableSet(u64);

impl TableSet {
    /// The empty set.
    pub const EMPTY: TableSet = TableSet(0);

    /// Singleton set.
    pub fn single(idx: usize) -> TableSet {
        debug_assert!(idx < 64);
        TableSet(1u64 << idx)
    }

    /// Set containing `0..n`.
    pub fn first_n(n: usize) -> TableSet {
        debug_assert!(n <= 64);
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of indexes.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = usize>) -> TableSet {
        let mut s = TableSet::EMPTY;
        for i in iter {
            s = s.with(i);
        }
        s
    }

    /// The raw mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Set with `idx` added.
    pub fn with(self, idx: usize) -> TableSet {
        TableSet(self.0 | (1u64 << idx))
    }

    /// Union.
    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    /// Difference (`self \ other`).
    pub fn minus(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    /// Membership.
    pub fn contains(self, idx: usize) -> bool {
        self.0 & (1u64 << idx) != 0
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Do the sets share any member?
    pub fn intersects(self, other: TableSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut mask = self.0;
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some(idx)
            }
        })
    }

    /// Iterate all non-empty proper subsets of this set.
    ///
    /// Classic sub-mask enumeration; used by bushy dynamic-programming join
    /// enumeration to split a set into (left, right) partitions.
    pub fn proper_subsets(self) -> impl Iterator<Item = TableSet> {
        let full = self.0;
        let mut sub = full & full.wrapping_sub(1); // largest proper subset
        let mut done = full == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            if sub == 0 {
                done = true;
                return None;
            }
            let out = TableSet(sub);
            sub = (sub - 1) & full;
            Some(out)
        })
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = TableSet::single(0).with(3).with(5);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 5]);
        assert_eq!(s.to_string(), "{0,3,5}");
    }

    #[test]
    fn set_algebra() {
        let a = TableSet::from_iter([0, 1, 2]);
        let b = TableSet::from_iter([2, 3]);
        assert_eq!(a.union(b), TableSet::from_iter([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), TableSet::single(2));
        assert_eq!(a.minus(b), TableSet::from_iter([0, 1]));
        assert!(TableSet::single(2).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.intersects(b));
        assert!(!TableSet::single(0).intersects(b));
    }

    #[test]
    fn first_n() {
        assert_eq!(TableSet::first_n(3), TableSet::from_iter([0, 1, 2]));
        assert_eq!(TableSet::first_n(0), TableSet::EMPTY);
        assert_eq!(TableSet::first_n(64).len(), 64);
    }

    #[test]
    fn proper_subsets_of_three_elements() {
        let s = TableSet::from_iter([1, 4, 6]);
        let subs: Vec<TableSet> = s.proper_subsets().collect();
        // 2^3 - 2 = 6 non-empty proper subsets.
        assert_eq!(subs.len(), 6);
        for sub in &subs {
            assert!(sub.is_subset_of(s));
            assert!(!sub.is_empty());
            assert_ne!(*sub, s);
        }
        // Each subset paired with its complement covers the set exactly once;
        // check complements are present.
        for sub in &subs {
            let comp = s.minus(*sub);
            assert!(subs.contains(&comp));
        }
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(TableSet::single(3).proper_subsets().count(), 0);
        assert_eq!(TableSet::EMPTY.proper_subsets().count(), 0);
    }
}
