//! Property-based tests: TableSet against a BTreeSet model, signature
//! stability, and validity-range algebra.

use pop_plan::{subplan_signature, QueryBuilder, TableSet, ValidityRange};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_idx_set() -> impl Strategy<Value = BTreeSet<usize>> {
    prop::collection::btree_set(0usize..16, 0..10)
}

fn to_ts(s: &BTreeSet<usize>) -> TableSet {
    TableSet::from_iter(s.iter().copied())
}

proptest! {
    #[test]
    fn tableset_matches_btreeset_model(a in arb_idx_set(), b in arb_idx_set()) {
        let (ta, tb) = (to_ts(&a), to_ts(&b));
        // union / intersection / difference
        prop_assert_eq!(
            ta.union(tb).iter().collect::<BTreeSet<_>>(),
            a.union(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            ta.intersect(tb).iter().collect::<BTreeSet<_>>(),
            a.intersection(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            ta.minus(tb).iter().collect::<BTreeSet<_>>(),
            a.difference(&b).copied().collect::<BTreeSet<_>>()
        );
        // predicates
        prop_assert_eq!(ta.len(), a.len());
        prop_assert_eq!(ta.is_empty(), a.is_empty());
        prop_assert_eq!(ta.is_subset_of(tb), a.is_subset(&b));
        prop_assert_eq!(ta.intersects(tb), !a.is_disjoint(&b));
        for i in 0..16 {
            prop_assert_eq!(ta.contains(i), a.contains(&i));
        }
    }

    #[test]
    fn proper_subsets_enumeration_is_complete(a in prop::collection::btree_set(0usize..10, 1..6)) {
        let ts = to_ts(&a);
        let subs: BTreeSet<u64> = ts.proper_subsets().map(pop_plan::TableSet::mask).collect();
        // Count: 2^n - 2 (excludes empty and full).
        let expected = (1u64 << a.len()) - 2;
        prop_assert_eq!(subs.len() as u64, expected);
        for m in &subs {
            let s = TableSet::from_iter((0..16).filter(|i| m & (1 << i) != 0));
            prop_assert!(s.is_subset_of(ts) && !s.is_empty() && s != ts);
        }
    }

    #[test]
    fn validity_range_intersection_is_commutative_and_narrowing(
        lo1 in 0.0f64..100.0, w1 in 0.0f64..1000.0,
        lo2 in 0.0f64..100.0, w2 in 0.0f64..1000.0,
        probe in 0.0f64..1200.0,
    ) {
        let a = ValidityRange::new(lo1, lo1 + w1);
        let b = ValidityRange::new(lo2, lo2 + w2);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        // Intersection contains exactly the common points.
        prop_assert_eq!(ab.contains(probe), a.contains(probe) && b.contains(probe));
        // Intersecting with unbounded is identity.
        prop_assert_eq!(a.intersect(&ValidityRange::unbounded()), a);
    }

    #[test]
    fn signatures_identify_subplans(n_tables in 2usize..6, seed in 0u64..1000) {
        // Build a chain-join query; signatures must be injective over
        // table subsets (different sets -> different signatures) and
        // deterministic.
        let mut b = QueryBuilder::new();
        let ids: Vec<usize> = (0..n_tables).map(|i| b.table(format!("t{i}"))).collect();
        for w in ids.windows(2) {
            b.join(w[0], 0, w[1], 1);
        }
        let q = b.build().unwrap();
        let _ = seed;
        let mut seen = std::collections::HashMap::new();
        for mask in 1u64..(1 << n_tables) {
            let set = TableSet::from_iter((0..n_tables).filter(|i| mask & (1 << i) != 0));
            let sig = subplan_signature(&q, set);
            prop_assert_eq!(subplan_signature(&q, set), sig.clone(), "non-deterministic");
            if let Some(prev) = seen.insert(sig.clone(), mask) {
                prop_assert!(false, "collision between masks {prev:b} and {mask:b}: {sig}");
            }
        }
    }
}
