//! Per-plan robustness certificates.
//!
//! A [`RobustnessCertificate`] summarizes what the dataflow analyzer can
//! *prove* about a plan's safety net: how many edges are guarded by
//! checkpoints, how much estimation risk is left uncovered, and how many
//! re-optimizations the plan could trigger in the worst case. The driver
//! attaches one per execution step to the run report, so equivalence and
//! chaos suites can assert the certificate is **invariant across thread
//! counts and morsel sizes** — parallelism must never change what the
//! plan promises.
//!
//! To make that invariance hold by construction, the certificate is
//! computed over the plan's *serial skeleton*: `Exchange`/`Gather`
//! wrappers (the only nodes the parallelize pass inserts) are skipped
//! during traversal, partitioning and fold registration are ignored, and
//! paths are skeleton paths. Everything else — checks, ranges,
//! intervals — is identical at any degree of parallelism.

use crate::domain::{self, AbstractState};
use crate::LintContext;
use pop_plan::PhysNode;

/// What the analyzer can prove about one plan's robustness.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessCertificate {
    /// Hash of the serial skeleton (operator names, tables, check ids —
    /// no partitioning), stable across thread counts and morsel sizes.
    pub plan_hash: u64,
    /// Input edges in the serial skeleton.
    pub edges: usize,
    /// Checkpoints in the plan.
    pub checks: usize,
    /// Edges whose cardinality interval escapes their validity range by
    /// more than the risk threshold.
    pub risky_edges: usize,
    /// Risky edges dominated by a CHECK or materialization point before
    /// the next pipeline breaker.
    pub guarded_edges: usize,
    /// Skeleton paths of risky edges with no such dominator (residual
    /// holes in the safety net).
    pub uncovered: Vec<String>,
    /// Worst escape factor among uncovered risky edges (`1.0` when fully
    /// covered): by how much the actual cardinality could leave a
    /// validity range with no checkpoint noticing.
    pub residual_risk: f64,
    /// Checks that can never fire given the reachable cardinality
    /// intervals of their inputs.
    pub dead_checks: usize,
    /// Checks that always fire.
    pub vacuous_checks: usize,
    /// Upper bound on re-optimizations this plan can trigger over the
    /// whole query (one per distinct checkpoint; the driver additionally
    /// caps it at `max_reopts`).
    pub worst_case_reopts: usize,
}

impl RobustnessCertificate {
    /// One-line rendering for report summaries.
    pub fn render(&self) -> String {
        format!(
            "cert {:016x}: edges={} checks={} risky={} guarded={} uncovered={} \
             residual={:.1}x dead={} vacuous={} max-reopts={}",
            self.plan_hash,
            self.edges,
            self.checks,
            self.risky_edges,
            self.guarded_edges,
            self.uncovered.len(),
            self.residual_risk,
            self.dead_checks,
            self.vacuous_checks,
            self.worst_case_reopts,
        )
    }

    /// JSON rendering (hand-built; the certificate is flat).
    pub fn to_json(&self) -> String {
        let uncovered: Vec<String> = self
            .uncovered
            .iter()
            .map(|p| format!("\"{}\"", p.replace('"', "\\\"")))
            .collect();
        format!(
            "{{\"plan_hash\":\"{:016x}\",\"edges\":{},\"checks\":{},\"risky_edges\":{},\
             \"guarded_edges\":{},\"uncovered\":[{}],\"residual_risk\":{:.3},\
             \"dead_checks\":{},\"vacuous_checks\":{},\"worst_case_reopts\":{}}}",
            self.plan_hash,
            self.edges,
            self.checks,
            self.risky_edges,
            self.guarded_edges,
            uncovered.join(","),
            self.residual_risk,
            self.dead_checks,
            self.vacuous_checks,
            self.worst_case_reopts,
        )
    }
}

impl std::fmt::Display for RobustnessCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Skip the parallel-only wrappers the parallelize pass inserts.
fn skeleton(mut node: &PhysNode) -> &PhysNode {
    while let PhysNode::Exchange { input, .. } | PhysNode::Gather { input, .. } = node {
        node = input;
    }
    node
}

fn skeleton_children(node: &PhysNode) -> Vec<&PhysNode> {
    node.children().into_iter().map(skeleton).collect()
}

/// Certify `plan` against the abstract domain: the same interpretation
/// [`crate::lint_plan`] runs, restricted to the serial skeleton.
pub fn certify(plan: &PhysNode, ctx: &LintContext<'_>) -> RobustnessCertificate {
    let mut cert = RobustnessCertificate {
        plan_hash: 0,
        edges: 0,
        checks: plan.checks().len(),
        risky_edges: 0,
        guarded_edges: 0,
        uncovered: Vec::new(),
        residual_risk: 1.0,
        dead_checks: 0,
        vacuous_checks: 0,
        worst_case_reopts: plan.checks().len(),
    };
    let mut hash: u64 = pop_types::FNV1A_OFFSET;
    let mut path = Vec::new();
    let root = skeleton(plan);
    let st = visit(root, ctx, &mut path, &mut cert, &mut hash);
    // Risky edges still open at the root stream to the application: they
    // are uncovered residual risk exactly like breaker-consumed ones.
    for r in &st.open_risks {
        cert.uncovered.push(r.path.clone());
        cert.residual_risk = cert.residual_risk.max(r.escape);
    }
    cert.risky_edges = cert.guarded_edges + cert.uncovered.len();
    cert.plan_hash = hash;
    cert
}

use pop_types::fnv1a_extend as fnv;

fn visit(
    node: &PhysNode,
    ctx: &LintContext<'_>,
    path: &mut Vec<usize>,
    cert: &mut RobustnessCertificate,
    hash: &mut u64,
) -> AbstractState {
    fnv(hash, node.name().as_bytes());
    if let PhysNode::Check { spec, .. } | PhysNode::BufCheck { spec, .. } = node {
        fnv(hash, &spec.id.to_le_bytes());
        fnv(hash, spec.signature.as_bytes());
    }
    if let PhysNode::TableScan { table, .. } | PhysNode::IndexRangeScan { table, .. } = node {
        fnv(hash, table.as_bytes());
    }

    let kids = skeleton_children(node);
    let mut states = Vec::with_capacity(kids.len());
    for (i, child) in kids.iter().enumerate() {
        path.push(i);
        states.push(visit(child, ctx, path, cert, hash));
        path.pop();
    }
    cert.edges += kids.len();

    let inputs: Vec<&AbstractState> = states.iter().collect();
    let st = domain::transfer(node, &inputs, ctx, path);

    // Risky edges consumed unguarded by this node are uncovered; risky
    // edges cleared by a dominator are guarded.
    for (i, (child, cst)) in kids.iter().copied().zip(&states).enumerate() {
        if domain::consumed_unguarded(node, i) {
            for r in cst
                .open_risks
                .iter()
                .cloned()
                .chain(domain::edge_risk(node, i, child, cst, ctx, path))
            {
                cert.uncovered.push(r.path);
                cert.residual_risk = cert.residual_risk.max(r.escape);
            }
        } else if matches!(
            node,
            PhysNode::Check { .. }
                | PhysNode::BufCheck { .. }
                | PhysNode::Sort { .. }
                | PhysNode::Temp { .. }
        ) {
            // This node is a dominator (its transfer clears the open
            // set): everything open below edge `i` is guarded here.
            cert.guarded_edges += cst.open_risks.len()
                + usize::from(domain::edge_risk(node, i, child, cst, ctx, path).is_some());
        }
    }

    if let PhysNode::Check { spec, .. } | PhysNode::BufCheck { spec, .. } = node {
        let input = states[0].interval;
        if input.is_known() {
            if input.inside(&spec.range) {
                cert.dead_checks += 1;
            } else if input.disjoint(&spec.range) {
                cert.vacuous_checks += 1;
            }
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use pop_plan::{CheckContext, CheckFlavor, Partitioning, ValidityRange};

    fn gather(input: PhysNode, parts: usize) -> PhysNode {
        let mut props = input.props().clone();
        props.partitioning = Partitioning::Single;
        props.edge_ranges = vec![ValidityRange::unbounded()];
        PhysNode::Gather {
            input: Box::new(input),
            parts,
            props,
        }
    }

    #[test]
    fn certificate_ignores_parallel_wrappers() {
        let serial = check(
            temp(leaf(0, "t", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        let mut partitioned = serial.clone();
        partitioned.props_mut().partitioning = Partitioning::Range(4);
        let parallel = gather(partitioned, 4);
        let ctx = LintContext::bare();
        let a = certify(&serial, &ctx);
        let b = certify(&parallel, &ctx);
        assert_eq!(a, b, "certificate must be thread-count invariant");
        assert_eq!(a.checks, 1);
        assert_eq!(a.worst_case_reopts, 1);
    }

    #[test]
    fn render_and_json_are_stable() {
        let plan = check(
            temp(leaf(0, "t", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        let cert = certify(&plan, &LintContext::bare());
        let line = cert.render();
        assert!(line.contains("checks=1"), "{line}");
        let json = cert.to_json();
        assert!(json.contains("\"checks\":1"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
