//! Pass 4: cost/cardinality sanity (`PL301`–`PL303`).
//!
//! `PlanProps::cost` is *cumulative* (subtree total), so it must be
//! monotone up the tree; cardinalities and costs must be finite and
//! non-negative, or every downstream consumer — validity ranges, the
//! work accounting of the driver, plan comparison during pruning — is
//! reasoning over garbage.

use crate::dataflow::{NodeCx, Pass};
use crate::{DiagCode, LintContext, Sink};
use pop_plan::PhysNode;

/// Relative + absolute slack for the monotonicity comparison: cumulative
/// costs are sums of floats accumulated in different orders.
const REL_EPS: f64 = 1e-9;
const ABS_EPS: f64 = 1e-6;

pub(crate) struct CostPass;

impl Pass for CostPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, _ctx: &LintContext<'_>, sink: &mut Sink) {
        check_node(cx.node, cx.path, sink);
    }
}

fn check_node(node: &PhysNode, path: &[usize], sink: &mut Sink) {
    let props = node.props();
    if props.card.is_nan() || props.card.is_infinite() || props.card < 0.0 {
        sink.emit(
            DiagCode::Pl302,
            node,
            path,
            format!(
                "cardinality estimate {} is not a finite non-negative number",
                props.card
            ),
        );
    }
    if props.cost.is_nan() || props.cost.is_infinite() || props.cost < 0.0 {
        sink.emit(
            DiagCode::Pl303,
            node,
            path,
            format!(
                "cost estimate {} is not a finite non-negative number",
                props.cost
            ),
        );
    }
    // LIMIT stops its child early, so the cost model legitimately
    // discounts its cumulative cost below the child's full-run cost.
    if matches!(node, PhysNode::Limit { .. }) {
        return;
    }
    for (i, child) in node.children().into_iter().enumerate() {
        let cc = child.props().cost;
        if cc.is_finite() && props.cost.is_finite() && props.cost < cc * (1.0 - REL_EPS) - ABS_EPS {
            sink.emit(
                DiagCode::Pl301,
                node,
                path,
                format!(
                    "cumulative cost {:.3} below child {i} cost {cc:.3}",
                    props.cost
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::*;
    use crate::{lint_plan, LintContext};

    #[test]
    fn pl301_non_monotone_cost() {
        let mut plan = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0);
        plan.props_mut().cost = 1.0; // children cost 100 and 1000
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL301"), "{diags:?}");
    }

    #[test]
    fn pl302_nan_cardinality() {
        let mut plan = leaf(0, "a", 2, 100.0);
        plan.props_mut().card = f64::NAN;
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL302"));
    }

    #[test]
    fn pl302_negative_cardinality() {
        let mut plan = leaf(0, "a", 2, 100.0);
        plan.props_mut().card = -4.0;
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL302"));
    }

    #[test]
    fn pl303_infinite_cost() {
        let mut plan = leaf(0, "a", 2, 100.0);
        plan.props_mut().cost = f64::INFINITY;
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL303"));
    }

    #[test]
    fn equal_costs_are_monotone() {
        // Pass-through wrappers legitimately keep the child's cost.
        let inner = leaf(0, "a", 2, 100.0);
        let props = inner.props().clone();
        let plan = pop_plan::PhysNode::Limit {
            input: Box::new(inner),
            n: 5,
            props,
        };
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }
}
