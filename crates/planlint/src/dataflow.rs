//! The dataflow engine: a bottom-up abstract interpreter over the
//! physical plan plus the driver that runs every lint pass against the
//! computed states in one pre-order walk.
//!
//! Phase 1 ([`interpret`]) computes one [`AbstractState`] per node via
//! [`domain::transfer`], bottom-up, into a table indexed by pre-order
//! position. Phase 2 ([`drive`]) walks the tree pre-order (so
//! diagnostics keep the historical parent-before-children order), hands
//! every [`Pass`] the node *and* its abstract states, then calls each
//! pass's whole-plan `finish` hook. All six structural passes and the
//! interval analyses run on this engine; there are no per-pass
//! traversals.

use crate::domain::{self, AbstractState};
use crate::{DiagCode, Frame, LintContext, Sink};
use pop_plan::PhysNode;

/// Everything a pass sees at one node.
pub(crate) struct NodeCx<'a, 'p> {
    /// The node under analysis.
    pub node: &'p PhysNode,
    /// The node's own abstract state.
    pub state: &'a AbstractState,
    /// Abstract states of the node's inputs, aligned with
    /// [`PhysNode::children`].
    pub children: &'a [&'a AbstractState],
    /// Ancestor stack, outermost first.
    pub frames: &'a [Frame<'p>],
    /// Child-index path from the root.
    pub path: &'a [usize],
}

/// One lint pass, ported onto the dataflow framework: `check` runs per
/// node against the abstract states, `finish` once per plan for
/// whole-plan rules.
pub(crate) trait Pass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink);
    fn finish(&mut self, _plan: &PhysNode, _ctx: &LintContext<'_>, _sink: &mut Sink) {}
}

/// Per-node abstract states, indexed by pre-order position.
pub(crate) struct StateTable {
    states: Vec<AbstractState>,
    /// Pre-order indexes of each node's children, aligned with `states`.
    child_idx: Vec<Vec<usize>>,
}

impl StateTable {
    pub(crate) fn state(&self, pre_order: usize) -> &AbstractState {
        &self.states[pre_order]
    }

    /// All states, in pre-order.
    pub(crate) fn states(&self) -> &[AbstractState] {
        &self.states
    }
}

/// Phase 1: abstract-interpret the plan bottom-up.
pub(crate) fn interpret(plan: &PhysNode, ctx: &LintContext<'_>) -> StateTable {
    let mut table = StateTable {
        states: Vec::with_capacity(plan.node_count()),
        child_idx: Vec::with_capacity(plan.node_count()),
    };
    let mut path = Vec::new();
    fill(plan, ctx, &mut path, &mut table);
    table
}

fn fill(
    node: &PhysNode,
    ctx: &LintContext<'_>,
    path: &mut Vec<usize>,
    table: &mut StateTable,
) -> usize {
    let my = table.states.len();
    // Reserve the pre-order slot with a placeholder, recurse, then
    // transfer from the children's states.
    table.states.push(AbstractState {
        interval: domain::CardInterval::top(),
        partitioning: pop_plan::Partitioning::Single,
        materialized: false,
        open_risks: Vec::new(),
    });
    table.child_idx.push(Vec::new());
    let mut kids = Vec::new();
    for (i, child) in node.children().into_iter().enumerate() {
        path.push(i);
        kids.push(fill(child, ctx, path, table));
        path.pop();
    }
    let inputs: Vec<&AbstractState> = kids.iter().map(|&k| &table.states[k]).collect();
    let st = domain::transfer(node, &inputs, ctx, path);
    table.states[my] = st;
    table.child_idx[my] = kids;
    my
}

/// Phase 2: pre-order walk handing every pass the node plus its states.
pub(crate) fn drive(
    plan: &PhysNode,
    ctx: &LintContext<'_>,
    table: &StateTable,
    passes: &mut [&mut dyn Pass],
    sink: &mut Sink,
) {
    let mut path = Vec::new();
    let mut frames = Vec::new();
    walk(plan, 0, ctx, table, passes, &mut path, &mut frames, sink);
    for pass in passes.iter_mut() {
        pass.finish(plan, ctx, sink);
    }
}

#[allow(clippy::too_many_arguments)] // internal recursion carrying walk state
fn walk<'p>(
    node: &'p PhysNode,
    pre_order: usize,
    ctx: &LintContext<'_>,
    table: &StateTable,
    passes: &mut [&mut dyn Pass],
    path: &mut Vec<usize>,
    frames: &mut Vec<Frame<'p>>,
    sink: &mut Sink,
) {
    let children: Vec<&AbstractState> = table.child_idx[pre_order]
        .iter()
        .map(|&k| table.state(k))
        .collect();
    let cx = NodeCx {
        node,
        state: table.state(pre_order),
        children: &children,
        frames,
        path,
    };
    for pass in passes.iter_mut() {
        pass.check(&cx, ctx, sink);
    }
    let kids = table.child_idx[pre_order].clone();
    for (i, (child, k)) in node.children().into_iter().zip(kids).enumerate() {
        path.push(i);
        frames.push(Frame { node, child_idx: i });
        walk(child, k, ctx, table, passes, path, frames, sink);
        frames.pop();
        path.pop();
    }
}

/// Pass 7: the interval analyses of the dataflow framework —
/// CHECK-coverage proof (`PL411`) and validity-range reachability
/// (`PL412` dead checks, `PL413` vacuous checks).
///
/// All three rules consume the cardinality intervals of [`domain`]; with
/// no stats registry in the context every interval is unknown and the
/// pass is silent. `PL411` additionally requires
/// [`crate::LintOptions::expect_check_coverage`] and a plan that has
/// checkpoints at all, mirroring `PL104`'s gating: a plan POP chose not
/// to guard (below the cost threshold, flavors off) is not a coverage
/// hole.
pub(crate) struct RiskPass {
    /// Does the plan contain any checkpoints? (Computed lazily at the
    /// root, which phase 2 visits first.)
    has_checks: Option<bool>,
}

impl RiskPass {
    pub(crate) fn new() -> Self {
        RiskPass { has_checks: None }
    }
}

impl Pass for RiskPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink) {
        let has_checks = *self
            .has_checks
            .get_or_insert_with(|| !root_of(cx).checks().is_empty());

        // PL412/PL413: a CHECK whose trigger range cannot/must fire given
        // the reachable cardinalities of its input. An *unbounded* range
        // is exempt: a `[0, ∞)` check is a deliberate observation point
        // (its exactly-resolved count feeds the cardinality feedback
        // cache), not a misconfigured trigger.
        if let PhysNode::Check { spec, .. } | PhysNode::BufCheck { spec, .. } = cx.node {
            let input = cx.children[0].interval;
            if input.is_known() && !spec.range.is_unbounded() {
                if input.inside(&spec.range) {
                    sink.emit(
                        DiagCode::Pl412,
                        cx.node,
                        cx.path,
                        format!(
                            "dead CHECK #{}: reachable cardinalities {} lie inside its \
                             trigger range {} — it can never fire",
                            spec.id, input, spec.range
                        ),
                    );
                } else if input.disjoint(&spec.range) {
                    sink.emit(
                        DiagCode::Pl413,
                        cx.node,
                        cx.path,
                        format!(
                            "vacuous CHECK #{}: reachable cardinalities {} are disjoint \
                             from its trigger range {} — it always fires",
                            spec.id, input, spec.range
                        ),
                    );
                }
            }
        }

        // PL411: risky edges consumed by a pipeline breaker that offers
        // no re-optimization opportunity, with no dominating CHECK or
        // materialization point in between.
        if !ctx.options.expect_check_coverage || !has_checks {
            return;
        }
        for (i, (child, cst)) in cx
            .node
            .children()
            .into_iter()
            .zip(cx.children.iter().copied())
            .enumerate()
        {
            if !domain::consumed_unguarded(cx.node, i) {
                continue;
            }
            let mut risks = cst.open_risks.clone();
            if let Some(r) = domain::edge_risk(cx.node, i, child, cst, ctx, cx.path) {
                risks.push(r);
            }
            for r in risks {
                sink.emit(
                    DiagCode::Pl411,
                    cx.node,
                    cx.path,
                    format!(
                        "risky edge at {} ({}, cardinality can leave its validity range \
                         by {:.1}x) reaches this {} with no CHECK or materialization \
                         point in between",
                        r.path,
                        r.node,
                        r.escape,
                        cx.node.name()
                    ),
                );
            }
        }
    }
}

/// The plan root: the bottom frame's node, or the current node when the
/// walk is at the root itself.
pub(crate) fn root_of<'p>(cx: &NodeCx<'_, 'p>) -> &'p PhysNode {
    cx.frames.first().map_or(cx.node, |f| f.node)
}

/// Pass 8: the monitor-coverage proof (`PL421`), the runtime complement
/// of the CHECK-coverage proof.
///
/// The driver installs a continuous suboptimality monitor on every node
/// whose row stream no CHECK already counts — inside parallel regions
/// the counts fold into shared per-node cells, so coverage does not stop
/// at a GATHER — and a risky edge that reaches an unguarded pipeline
/// breaker or the plan root without a dominator is therefore still
/// *observed*: the monitor below it trips when the actual cardinality
/// escapes the interval envelope, and the signal is escalated like a
/// CHECK violation. `PL421` reports the edges where even that last line
/// fails: risks whose node cannot carry a monitor at all (no table set,
/// so no feedback signature to report under). Together, a clean
/// `PL411` and `PL421` sweep proves every risky edge is either
/// CHECK-dominated or monitor-covered.
///
/// Gated on [`crate::LintOptions::expect_monitor_coverage`]: with the
/// monitor layer disabled there is nothing to prove. Like every
/// interval rule, the pass is silent without a stats registry.
pub(crate) struct MonitorPass;

impl Pass for MonitorPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink) {
        if !ctx.options.expect_monitor_coverage {
            return;
        }
        let report = |risks: Vec<domain::OpenRisk>, sink: &mut Sink| {
            for r in risks {
                // Covered: the node below the edge carries a monitor
                // (folded into a shared cell when it runs partitioned).
                if r.monitorable {
                    continue;
                }
                sink.emit(
                    DiagCode::Pl421,
                    cx.node,
                    cx.path,
                    format!(
                        "risky edge at {} ({}, cardinality can leave its validity range \
                         by {:.1}x) is neither CHECK-dominated nor monitor-covered — \
                         the node below it runs unmonitored",
                        r.path, r.node, r.escape
                    ),
                );
            }
        };
        // Breaker-consumed risks: same report points as `PL411` and the
        // certificate's uncovered set.
        for (i, (child, cst)) in cx
            .node
            .children()
            .into_iter()
            .zip(cx.children.iter().copied())
            .enumerate()
        {
            if !domain::consumed_unguarded(cx.node, i) {
                continue;
            }
            let mut risks = cst.open_risks.clone();
            risks.extend(domain::edge_risk(cx.node, i, child, cst, ctx, cx.path));
            report(risks, sink);
        }
        // Root-surviving risks stream to the application with no further
        // observation opportunity.
        if cx.frames.is_empty() {
            report(cx.state.open_risks.clone(), sink);
        }
    }
}
