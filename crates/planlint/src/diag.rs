//! Diagnostic codes, severities and the diagnostic record itself.

use std::fmt;

/// How bad a finding is.
///
/// `Deny` means the plan violates an invariant the executor relies on —
/// running it risks a wrong answer or a panic, so the driver refuses to
/// execute it (unless linting is configured down to warn-only). `Warn`
/// marks suspicious-but-runnable constructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable.
    Warn,
    /// Invariant violation: the plan must not execute.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable diagnostic codes, grouped by pass:
///
/// * `PL0xx` — schema/layout checking
/// * `PL1xx` — validity-range consistency
/// * `PL2xx` — CHECK placement (Table 1 of the paper)
/// * `PL3xx` — cost/cardinality sanity
/// * `PL40x` — temp-MV reuse soundness
/// * `PL41x` — interval dataflow analyses (coverage proof, check
///   reachability)
/// * `PL42x` — monitor-coverage proof (risky edges the runtime
///   suboptimality monitors cannot observe)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is documented by `title()`
pub enum DiagCode {
    Pl001,
    Pl002,
    Pl003,
    Pl004,
    Pl101,
    Pl102,
    Pl103,
    Pl104,
    Pl201,
    Pl202,
    Pl203,
    Pl204,
    Pl205,
    Pl206,
    Pl207,
    Pl208,
    Pl301,
    Pl302,
    Pl303,
    Pl304,
    Pl305,
    Pl306,
    Pl401,
    Pl402,
    Pl403,
    Pl411,
    Pl412,
    Pl413,
    Pl421,
}

impl DiagCode {
    /// Every code, in code order (the source of truth for the
    /// `planlint --codes` table).
    pub const ALL: [DiagCode; 29] = [
        DiagCode::Pl001,
        DiagCode::Pl002,
        DiagCode::Pl003,
        DiagCode::Pl004,
        DiagCode::Pl101,
        DiagCode::Pl102,
        DiagCode::Pl103,
        DiagCode::Pl104,
        DiagCode::Pl201,
        DiagCode::Pl202,
        DiagCode::Pl203,
        DiagCode::Pl204,
        DiagCode::Pl205,
        DiagCode::Pl206,
        DiagCode::Pl207,
        DiagCode::Pl208,
        DiagCode::Pl301,
        DiagCode::Pl302,
        DiagCode::Pl303,
        DiagCode::Pl304,
        DiagCode::Pl305,
        DiagCode::Pl306,
        DiagCode::Pl401,
        DiagCode::Pl402,
        DiagCode::Pl403,
        DiagCode::Pl411,
        DiagCode::Pl412,
        DiagCode::Pl413,
        DiagCode::Pl421,
    ];
    /// The stable code string, e.g. `"PL001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::Pl001 => "PL001",
            DiagCode::Pl002 => "PL002",
            DiagCode::Pl003 => "PL003",
            DiagCode::Pl004 => "PL004",
            DiagCode::Pl101 => "PL101",
            DiagCode::Pl102 => "PL102",
            DiagCode::Pl103 => "PL103",
            DiagCode::Pl104 => "PL104",
            DiagCode::Pl201 => "PL201",
            DiagCode::Pl202 => "PL202",
            DiagCode::Pl203 => "PL203",
            DiagCode::Pl204 => "PL204",
            DiagCode::Pl205 => "PL205",
            DiagCode::Pl206 => "PL206",
            DiagCode::Pl207 => "PL207",
            DiagCode::Pl208 => "PL208",
            DiagCode::Pl301 => "PL301",
            DiagCode::Pl302 => "PL302",
            DiagCode::Pl303 => "PL303",
            DiagCode::Pl304 => "PL304",
            DiagCode::Pl305 => "PL305",
            DiagCode::Pl306 => "PL306",
            DiagCode::Pl401 => "PL401",
            DiagCode::Pl402 => "PL402",
            DiagCode::Pl403 => "PL403",
            DiagCode::Pl411 => "PL411",
            DiagCode::Pl412 => "PL412",
            DiagCode::Pl413 => "PL413",
            DiagCode::Pl421 => "PL421",
        }
    }

    /// One-line description of what the code means.
    pub fn title(&self) -> &'static str {
        match self {
            DiagCode::Pl001 => "column reference does not resolve in the input layout",
            DiagCode::Pl002 => "node output layout inconsistent with its children",
            DiagCode::Pl003 => "malformed operator arguments",
            DiagCode::Pl004 => "type mismatch in predicate or join key",
            DiagCode::Pl101 => "empty validity range (lo > hi)",
            DiagCode::Pl102 => "cardinality estimate outside its validity range",
            DiagCode::Pl103 => "malformed validity-range bound (NaN or negative)",
            DiagCode::Pl104 => "materialization point not guarded by a checkpoint",
            DiagCode::Pl201 => "LC checkpoint above an unmaterialized input",
            DiagCode::Pl202 => "LCEM checkpoint without its TEMP",
            DiagCode::Pl203 => "ECDC checkpoint without a rid side-table sink",
            DiagCode::Pl204 => "ECWC checkpoint not below a materialization point",
            DiagCode::Pl205 => "checkpoint flavor does not match operator or context",
            DiagCode::Pl206 => "duplicate checkpoint id",
            DiagCode::Pl207 => "BUFCHECK buffer too small for its range",
            DiagCode::Pl208 => "ECDC checkpoint side table has no registered cleanup",
            DiagCode::Pl301 => "parent cumulative cost below child cost",
            DiagCode::Pl302 => "non-finite or negative cardinality estimate",
            DiagCode::Pl303 => "non-finite or negative cost estimate",
            DiagCode::Pl304 => "GATHER is not a well-formed serial/parallel boundary",
            DiagCode::Pl305 => "EXCHANGE hash keys not covered by the downstream consumer's keys",
            DiagCode::Pl306 => "CHECK partitioning and fold registration disagree",
            DiagCode::Pl401 => "MV scan signature unknown to the catalog",
            DiagCode::Pl402 => "MV scan layout does not match the recorded MV",
            DiagCode::Pl403 => "MV scan estimate drifts from the MV's exact count",
            DiagCode::Pl411 => "risky edge reaches a pipeline breaker unguarded",
            DiagCode::Pl412 => "dead checkpoint: its trigger range can never fire",
            DiagCode::Pl413 => "vacuous checkpoint: its trigger range always fires",
            DiagCode::Pl421 => "risky edge neither CHECK-dominated nor monitor-covered",
        }
    }

    /// The severity this code reports at.
    ///
    /// The interval analyses (`PL411`–`PL413`) are Warn by design:
    /// their leaf intervals come from live statistics, and a chaos- or
    /// feedback-poisoned estimate can legitimately place a check range
    /// outside the provable interval — the plan still executes soundly,
    /// it just carries dead weight worth reporting.
    pub fn severity(&self) -> Severity {
        match self {
            DiagCode::Pl004
            | DiagCode::Pl104
            | DiagCode::Pl207
            | DiagCode::Pl403
            | DiagCode::Pl411
            | DiagCode::Pl412
            | DiagCode::Pl413
            | DiagCode::Pl421 => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDiagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (derived from the code).
    pub severity: Severity,
    /// Operator name of the offending node (e.g. `"HSJN"`).
    pub node: &'static str,
    /// Path from the root as child indexes, e.g. `"$.0.1"` (`"$"` is the
    /// root itself), matching [`pop_plan::PhysNode::children`] order.
    pub path: String,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} at {}: {}",
            self.code, self.severity, self.node, self.path, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_titled() {
        assert_eq!(DiagCode::Pl001.as_str(), "PL001");
        assert_eq!(DiagCode::Pl403.as_str(), "PL403");
        assert_eq!(DiagCode::Pl101.severity(), Severity::Deny);
        assert_eq!(DiagCode::Pl104.severity(), Severity::Warn);
        assert!(!DiagCode::Pl205.title().is_empty());
    }

    #[test]
    fn display_format() {
        let d = PlanDiagnostic {
            code: DiagCode::Pl101,
            severity: DiagCode::Pl101.severity(),
            node: "CHECK",
            path: "$.0".into(),
            message: "range [5, 2] is empty".into(),
        };
        assert_eq!(
            d.to_string(),
            "PL101 [deny] CHECK at $.0: range [5, 2] is empty"
        );
        assert!(Severity::Warn < Severity::Deny);
    }
}
