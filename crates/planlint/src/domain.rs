//! The abstract domain of the dataflow analyzer: cardinality intervals
//! plus the plan properties every pass reasons over, and the bottom-up
//! transfer function that propagates them.
//!
//! A [`CardInterval`] `[lo, hi]` bounds the cardinalities a node's output
//! *could actually have* at runtime, derived not from the optimizer's
//! point estimates but from hard facts: a scan cannot produce more rows
//! than its table holds, a join no more than the product of its inputs,
//! an ungrouped aggregate exactly one row. These bounds are sound no
//! matter how wrong the statistics-based selectivity estimates are —
//! which is exactly what makes them useful for vetting the CHECK layer
//! that exists *because* estimates lie (paper §2).
//!
//! Leaf intervals are seeded from the [`pop_stats::StatsRegistry`]
//! supplied in the [`LintContext`]; without one the domain stays
//! [`CardInterval::top`] (unknown) and every interval-based rule is
//! silent, so structural linting of hand-built plans is unaffected.

use crate::LintContext;
use pop_plan::{Partitioning, PhysNode, ValidityRange};

/// Interval abstract value for a node's output cardinality.
///
/// `top()` (`[0, +inf]`) is "unknown": nothing is claimed, and every
/// rule that consumes intervals must treat it as such. The lattice join
/// is the interval hull; there is no bottom (an unreachable node still
/// produces the empty-output interval `[0, 0]` at worst).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardInterval {
    /// Inclusive lower bound (rows).
    pub lo: f64,
    /// Inclusive upper bound (rows); `+inf` when unknown.
    pub hi: f64,
}

impl CardInterval {
    /// The unknown interval `[0, +inf]`.
    pub fn top() -> Self {
        CardInterval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// An exact cardinality `[n, n]`.
    pub fn exact(n: f64) -> Self {
        CardInterval { lo: n, hi: n }
    }

    /// An interval `[lo, hi]` (clamped to be well-formed).
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = lo.max(0.0);
        CardInterval { lo, hi: hi.max(lo) }
    }

    /// Is nothing known about this cardinality?
    pub fn is_top(&self) -> bool {
        self.hi.is_infinite()
    }

    /// Is a known, finite bound available?
    pub fn is_known(&self) -> bool {
        !self.is_top()
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval hull of two values.
    pub fn hull(&self, other: &CardInterval) -> CardInterval {
        CardInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Is every cardinality in this interval inside `range`? (Then a
    /// CHECK with that trigger range can never fire.)
    pub fn inside(&self, range: &ValidityRange) -> bool {
        range.lo <= self.lo && self.hi <= range.hi
    }

    /// Is the interval disjoint from `range`? (Then a CHECK with that
    /// trigger range always fires.)
    pub fn disjoint(&self, range: &ValidityRange) -> bool {
        self.hi < range.lo || self.lo > range.hi
    }

    /// By what factor can the actual cardinality escape `range`? Returns
    /// `1.0` when the interval is inside the range, and the worst-case
    /// ratio (actual bound vs range bound) otherwise. An unknown interval
    /// reports `1.0`: no escape is *provable*.
    pub fn escape_factor(&self, range: &ValidityRange) -> f64 {
        if self.is_top() {
            return 1.0;
        }
        let mut f = 1.0_f64;
        if range.hi.is_finite() && self.hi > range.hi {
            f = f.max(self.hi / range.hi.max(1.0));
        }
        if range.lo > 0.0 && self.lo < range.lo {
            f = f.max(range.lo / self.lo.max(1.0));
        }
        f
    }
}

impl std::fmt::Display for CardInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hi.is_infinite() {
            write!(f, "[{:.0}, inf)", self.lo)
        } else {
            write!(f, "[{:.0}, {:.0}]", self.lo, self.hi)
        }
    }
}

/// One risky edge still open in the current pipeline segment: the edge's
/// child cardinality interval escapes the edge's validity range by more
/// than the configured risk threshold, and no CHECK or materialization
/// point has dominated it yet.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRisk {
    /// Path of the node *below* the risky edge (`$`-rooted child-index
    /// path, as in [`crate::PlanDiagnostic::path`]).
    pub path: String,
    /// Operator name below the edge.
    pub node: &'static str,
    /// Worst-case factor by which the actual cardinality can leave the
    /// edge's validity range.
    pub escape: f64,
    /// Can the continuous suboptimality monitor layer observe this edge?
    /// True when the node below the edge is one the driver installs a
    /// monitor on (any node with a non-empty table set — nodes inside
    /// parallel regions fold their counts into shared cells, so they are
    /// covered like serial ones). Consumed by the monitor-coverage proof
    /// (`PL421`).
    pub monitorable: bool,
}

/// The abstract state the interpreter computes per node, bottom-up.
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractState {
    /// Bounds on the node's actual output cardinality.
    pub interval: CardInterval,
    /// Partition distribution of the node's output (mirrors
    /// [`pop_plan::PlanProps::partitioning`]; carried in the state so
    /// passes consume the lattice, not raw props).
    pub partitioning: Partitioning,
    /// Is the node's output materialized, looking through CHECK
    /// wrappers? (SORT/TEMP/MVSCAN — the LC placement opportunity.)
    pub materialized: bool,
    /// Risky edges below this node not yet dominated by a CHECK or
    /// materialization point (cleared by dominators, reported at
    /// pipeline breakers — see `PL411`).
    pub open_risks: Vec<OpenRisk>,
}

impl AbstractState {
    fn top() -> Self {
        AbstractState {
            interval: CardInterval::top(),
            partitioning: Partitioning::Single,
            materialized: false,
            open_risks: Vec::new(),
        }
    }
}

/// Live row count of base table `name`, from the stats registry when
/// supplied.
fn table_rows(ctx: &LintContext<'_>, name: &str) -> Option<f64> {
    let stats = ctx.stats?;
    #[allow(clippy::cast_precision_loss)] // row counts are far below 2^52
    stats.get(name).ok().map(|s| s.row_count as f64)
}

/// The transfer function: abstract state of `node` from the states of
/// its inputs (aligned with [`PhysNode::children`]).
///
/// Cardinality rules are the sound counterparts of the optimizer's
/// estimation formulas: where the estimator multiplies by a selectivity
/// in `[0, 1]`, the interval keeps `[0, input.hi]`; where the estimator
/// multiplies input cardinalities, the interval multiplies upper bounds.
/// Count-preserving wrappers pass their input interval through.
pub(crate) fn transfer(
    node: &PhysNode,
    inputs: &[&AbstractState],
    ctx: &LintContext<'_>,
    path: &[usize],
) -> AbstractState {
    let mut st = AbstractState::top();
    st.partitioning = node.props().partitioning.clone();

    st.interval = match node {
        PhysNode::TableScan { table, pred, .. } => match table_rows(ctx, table) {
            Some(n) if pred.is_none() => CardInterval::exact(n),
            Some(n) => CardInterval::new(0.0, n),
            None => CardInterval::top(),
        },
        PhysNode::IndexRangeScan { table, .. } => match table_rows(ctx, table) {
            Some(n) => CardInterval::new(0.0, n),
            None => CardInterval::top(),
        },
        PhysNode::MvScan { signature, .. } => {
            match ctx.catalog.and_then(|c| c.temp_mv(signature)) {
                #[allow(clippy::cast_precision_loss)]
                Some(mv) => CardInterval::exact(mv.actual_card as f64),
                None => CardInterval::top(),
            }
        }
        PhysNode::Nljn { inner, .. } => {
            let outer = inputs[0].interval;
            match table_rows(ctx, &inner.table) {
                Some(m) => CardInterval::new(0.0, outer.hi * m),
                None => CardInterval::top(),
            }
        }
        PhysNode::Hsjn { .. } | PhysNode::Mgjn { .. } => {
            CardInterval::new(0.0, inputs[0].interval.hi * inputs[1].interval.hi)
        }
        PhysNode::HashAgg { group_by, .. } => {
            let input = inputs[0].interval;
            if group_by.is_empty() {
                // An ungrouped aggregate emits exactly one row, even over
                // an empty input.
                CardInterval::exact(1.0)
            } else {
                let lo = if input.lo >= 1.0 { 1.0 } else { 0.0 };
                CardInterval::new(lo, input.hi)
            }
        }
        PhysNode::Limit { n, .. } => {
            let input = inputs[0].interval;
            #[allow(clippy::cast_precision_loss)]
            let n = *n as f64;
            CardInterval::new(input.lo.min(n), input.hi.min(n))
        }
        // Row-dropping operators: anywhere from nothing to everything.
        PhysNode::SemiProbe { .. } | PhysNode::Having { .. } | PhysNode::AntiJoinRids { .. } => {
            CardInterval::new(0.0, inputs[0].interval.hi)
        }
        // Count-preserving wrappers pass the input interval through.
        PhysNode::Sort { .. }
        | PhysNode::Temp { .. }
        | PhysNode::Project { .. }
        | PhysNode::Check { .. }
        | PhysNode::BufCheck { .. }
        | PhysNode::RidSink { .. }
        | PhysNode::Insert { .. }
        | PhysNode::Exchange { .. }
        | PhysNode::Gather { .. } => inputs[0].interval,
    };

    st.materialized = match node {
        PhysNode::Sort { .. } | PhysNode::Temp { .. } | PhysNode::MvScan { .. } => true,
        PhysNode::Check { .. } | PhysNode::BufCheck { .. } => inputs[0].materialized,
        _ => false,
    };

    st.open_risks = open_risks(node, inputs, ctx, path);
    st
}

/// The risky-edge accumulation of the CHECK-coverage proof (`PL411`).
///
/// A child edge is **risky** when the child's cardinality interval
/// escapes the edge's validity range by more than the configured
/// threshold: the actual cardinality can plausibly fall where the
/// optimizer's own sensitivity analysis proved the plan suboptimal.
/// Risky edges accumulate upward until a **dominator** (CHECK, BUFCHECK,
/// SORT, TEMP — a point where POP can observe the cardinality and
/// re-optimize) clears them; a pipeline breaker that is *not* such an
/// opportunity (hash aggregation, a hash-join build) consumes them
/// unguarded — the dataflow pass reports those (`PL411`).
fn open_risks(
    node: &PhysNode,
    inputs: &[&AbstractState],
    ctx: &LintContext<'_>,
    path: &[usize],
) -> Vec<OpenRisk> {
    // Dominators: the cardinality is observed (or observable) here, so
    // everything below is guarded.
    if matches!(
        node,
        PhysNode::Check { .. }
            | PhysNode::BufCheck { .. }
            | PhysNode::Sort { .. }
            | PhysNode::Temp { .. }
    ) {
        return Vec::new();
    }
    let mut open: Vec<OpenRisk> = Vec::new();
    let children = node.children();
    for (i, (child, cst)) in children.iter().zip(inputs.iter()).enumerate() {
        // Breakers consume their input's open set: the build side of a
        // hash join is materialized into the table, an aggregate's input
        // is fully consumed before it emits. The risk pass reports those
        // (`PL411`) at the breaker itself; they are not carried further.
        if consumed_unguarded(node, i) {
            continue;
        }
        open.extend(cst.open_risks.iter().cloned());
        if let Some(risk) = edge_risk(node, i, child, cst, ctx, path) {
            open.push(risk);
        }
    }
    open
}

/// Is input edge `i` of `node` consumed by a pipeline breaker that is
/// not itself a re-optimization opportunity?
pub(crate) fn consumed_unguarded(node: &PhysNode, i: usize) -> bool {
    matches!(node, PhysNode::HashAgg { .. }) || (matches!(node, PhysNode::Hsjn { .. }) && i == 0)
}

/// The [`OpenRisk`] input edge `i` of `node` introduces, if its child's
/// cardinality interval escapes the edge's validity range by more than
/// the configured threshold.
pub(crate) fn edge_risk(
    node: &PhysNode,
    i: usize,
    child: &PhysNode,
    child_state: &AbstractState,
    ctx: &LintContext<'_>,
    path: &[usize],
) -> Option<OpenRisk> {
    // An edge fed directly by a dominator is guarded by construction:
    // the cardinality crossing it was (or will be) observed there, so an
    // escape triggers re-optimization before any damage compounds.
    if child_state.materialized
        || matches!(child, PhysNode::Check { .. } | PhysNode::BufCheck { .. })
    {
        return None;
    }
    let range = edge_range(node, i);
    let escape = child_state.interval.escape_factor(&range);
    if escape <= ctx.options.risk_threshold {
        return None;
    }
    let mut p = String::from("$");
    for seg in path.iter().chain(std::iter::once(&i)) {
        p.push('.');
        p.push_str(&seg.to_string());
    }
    // Mirror the driver's monitor placement: every node with a table set
    // carries a monitor on its output unless a CHECK already counts that
    // stream (but then the check dominates the risk anyway). Nodes inside
    // parallel regions count too — the region controller folds their
    // output into shared monitor cells, restoring serial coverage.
    let monitorable = !child.props().tables.is_empty();
    Some(OpenRisk {
        path: p,
        node: child.name(),
        escape,
        monitorable,
    })
}

/// Validity range of input edge `i` of `node` (see
/// [`PhysNode::edge_range`]: unbounded when none was recorded or the
/// recorded ranges are misaligned with the children).
pub(crate) fn edge_range(node: &PhysNode, i: usize) -> ValidityRange {
    node.edge_range(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let top = CardInterval::top();
        assert!(top.is_top() && !top.is_known());
        assert!(top.contains(1e18));
        let x = CardInterval::exact(7.0);
        assert!(x.is_known() && x.contains(7.0) && !x.contains(8.0));
        assert_eq!(
            x.hull(&CardInterval::exact(3.0)),
            CardInterval::new(3.0, 7.0)
        );
        assert_eq!(CardInterval::new(5.0, 1.0), CardInterval::new(5.0, 5.0));
        assert_eq!(x.to_string(), "[7, 7]");
        assert_eq!(top.to_string(), "[0, inf)");
    }

    #[test]
    fn escape_and_containment() {
        let r = ValidityRange::new(10.0, 100.0);
        assert!(CardInterval::new(10.0, 100.0).inside(&r));
        assert!(!CardInterval::new(0.0, 100.0).inside(&r));
        assert!(CardInterval::new(200.0, 300.0).disjoint(&r));
        assert!(!CardInterval::new(50.0, 300.0).disjoint(&r));
        // hi escape: actual could be 1000 against a bound of 100.
        assert!((CardInterval::new(10.0, 1000.0).escape_factor(&r) - 10.0).abs() < 1e-9);
        // unknown interval proves nothing.
        assert!((CardInterval::top().escape_factor(&r) - 1.0).abs() < 1e-9);
        // unbounded range is never escaped.
        let unb = ValidityRange::unbounded();
        assert!((CardInterval::new(0.0, 1e12).escape_factor(&unb) - 1.0).abs() < 1e-9);
    }
}
