//! Pass 1: schema/layout checking (`PL001`–`PL004`).
//!
//! The executor's `build_operator` binds every expression positionally
//! against the child's layout; a reference that does not resolve there is
//! either a runtime error or — worse — a silent bind to the wrong column.
//! This pass proves, per node, that (a) every column reference resolves in
//! the layout it will be bound against, (b) the node's own output layout is
//! exactly what its operator produces from its children, and (c) types
//! agree where the catalog makes them knowable.

use crate::dataflow::{NodeCx, Pass};
use crate::{DiagCode, LintContext, Sink};
use pop_expr::Expr;
use pop_plan::{AggFunc, LayoutCol, PhysNode, PlanProps, SortKeyRef};
use pop_storage::Catalog;
use pop_types::{ColId, DataType, Value};

pub(crate) struct LayoutPass;

impl Pass for LayoutPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink) {
        check_node(cx.node, ctx, cx.path, sink);
    }
}

fn check_node(node: &PhysNode, ctx: &LintContext<'_>, path: &[usize], sink: &mut Sink) {
    let env = TypeEnv::new(ctx);
    match node {
        PhysNode::TableScan {
            qidx, pred, props, ..
        } => {
            check_scan_layout(node, *qidx, props, path, sink);
            if let Some(p) = pred {
                check_expr_resolves(node, p, &props.layout, "scan predicate", path, sink);
                env.check_expr(node, p, path, sink);
            }
        }
        PhysNode::IndexRangeScan {
            qidx,
            table,
            column,
            residual,
            props,
            ..
        } => {
            check_scan_layout(node, *qidx, props, path, sink);
            if let Some(n) = env.schema_len(table) {
                if *column >= n {
                    sink.emit(
                        DiagCode::Pl001,
                        node,
                        path,
                        format!("index column {column} out of range for {table} ({n} columns)"),
                    );
                }
            }
            if let Some(r) = residual {
                check_expr_resolves(node, r, &props.layout, "index residual", path, sink);
                env.check_expr(node, r, path, sink);
            }
        }
        PhysNode::MvScan { props, .. } => {
            if props.layout.iter().any(|c| c.as_base().is_none()) {
                sink.emit(
                    DiagCode::Pl002,
                    node,
                    path,
                    "MV scan layout contains aggregate columns".into(),
                );
            }
        }
        PhysNode::Nljn {
            outer,
            outer_key,
            inner,
            props,
        } => {
            let ol = &outer.props().layout;
            check_col_resolves(node, *outer_key, ol, "NLJN outer key", path, sink);
            for (ocol, icol) in &inner.residual_joins {
                check_col_resolves(node, *ocol, ol, "NLJN residual join", path, sink);
                if let Some(n) = env.schema_len(&inner.table) {
                    if *icol >= n {
                        sink.emit(
                            DiagCode::Pl001,
                            node,
                            path,
                            format!(
                                "NLJN residual inner column {icol} out of range for {} ({n} columns)",
                                inner.table
                            ),
                        );
                    }
                }
            }
            if let Some(n) = env.schema_len(&inner.table) {
                if inner.join_col >= n {
                    sink.emit(
                        DiagCode::Pl001,
                        node,
                        path,
                        format!(
                            "NLJN join column {} out of range for {} ({n} columns)",
                            inner.join_col, inner.table
                        ),
                    );
                }
            }
            if let Some(p) = &inner.pred {
                for c in p.columns_used() {
                    if c.table != inner.qidx {
                        sink.emit(
                            DiagCode::Pl001,
                            node,
                            path,
                            format!(
                                "NLJN inner predicate references {c}, not inner table t{}",
                                inner.qidx
                            ),
                        );
                    }
                }
            }
            check_nljn_layout(
                node,
                ol,
                inner.qidx,
                env.schema_len(&inner.table),
                props,
                path,
                sink,
            );
            if let (Some(a), Some(b)) = (
                env.dtype(*outer_key),
                env.table_col_dtype(&inner.table, inner.join_col),
            ) {
                TypeEnv::check_join_key_types(node, *outer_key, a, b, path, sink);
            }
        }
        PhysNode::Hsjn {
            build,
            probe,
            build_keys,
            probe_keys,
            props,
        } => {
            check_join_keys(node, build_keys, probe_keys, "HSJN", path, sink);
            for k in build_keys {
                check_col_resolves(
                    node,
                    *k,
                    &build.props().layout,
                    "HSJN build key",
                    path,
                    sink,
                );
            }
            for k in probe_keys {
                check_col_resolves(
                    node,
                    *k,
                    &probe.props().layout,
                    "HSJN probe key",
                    path,
                    sink,
                );
            }
            check_concat_layout(node, build.props(), probe.props(), props, path, sink);
            env.check_key_pair_types(node, build_keys, probe_keys, path, sink);
        }
        PhysNode::Mgjn {
            left,
            right,
            left_keys,
            right_keys,
            props,
        } => {
            check_join_keys(node, left_keys, right_keys, "MGJN", path, sink);
            for k in left_keys {
                check_col_resolves(node, *k, &left.props().layout, "MGJN left key", path, sink);
            }
            for k in right_keys {
                check_col_resolves(
                    node,
                    *k,
                    &right.props().layout,
                    "MGJN right key",
                    path,
                    sink,
                );
            }
            check_concat_layout(node, left.props(), right.props(), props, path, sink);
            env.check_key_pair_types(node, left_keys, right_keys, path, sink);
        }
        PhysNode::Sort {
            input, key, props, ..
        } => {
            match key {
                SortKeyRef::Col(c) => {
                    check_col_resolves(node, *c, &input.props().layout, "sort key", path, sink);
                }
                SortKeyRef::Pos(p) => {
                    if *p >= input.props().layout.len() {
                        sink.emit(
                            DiagCode::Pl003,
                            node,
                            path,
                            format!(
                                "sort position {p} out of range (layout has {} columns)",
                                input.props().layout.len()
                            ),
                        );
                    }
                }
            }
            check_passthrough_layout(node, input.props(), props, path, sink);
        }
        PhysNode::Project { input, cols, props } => {
            for c in cols {
                if !input.props().layout.contains(c) {
                    sink.emit(
                        DiagCode::Pl001,
                        node,
                        path,
                        format!("projected column {c:?} not in input layout"),
                    );
                }
            }
            if props.layout != *cols {
                sink.emit(
                    DiagCode::Pl002,
                    node,
                    path,
                    "projection output layout differs from its column list".into(),
                );
            }
        }
        PhysNode::HashAgg {
            input,
            group_by,
            aggs,
            props,
        } => {
            for c in group_by {
                check_col_resolves(node, *c, &input.props().layout, "group-by key", path, sink);
            }
            for a in aggs {
                if let AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) = a {
                    check_col_resolves(
                        node,
                        *c,
                        &input.props().layout,
                        "aggregate argument",
                        path,
                        sink,
                    );
                }
            }
            let expected: Vec<LayoutCol> = group_by
                .iter()
                .map(|c| LayoutCol::Base(*c))
                .chain((0..aggs.len()).map(LayoutCol::Agg))
                .collect();
            if props.layout != expected {
                sink.emit(
                    DiagCode::Pl002,
                    node,
                    path,
                    format!(
                        "aggregate layout must be group keys then {} aggregate slots",
                        aggs.len()
                    ),
                );
            }
        }
        PhysNode::Having {
            input,
            preds,
            props,
        } => {
            for p in preds {
                if p.pos >= props.layout.len() {
                    sink.emit(
                        DiagCode::Pl003,
                        node,
                        path,
                        format!(
                            "HAVING position {} out of range (layout has {} columns)",
                            p.pos,
                            props.layout.len()
                        ),
                    );
                }
            }
            check_passthrough_layout(node, input.props(), props, path, sink);
        }
        PhysNode::SemiProbe {
            input,
            clause,
            props,
        } => {
            check_col_resolves(
                node,
                clause.outer_col,
                &input.props().layout,
                "semi-probe outer column",
                path,
                sink,
            );
            check_passthrough_layout(node, input.props(), props, path, sink);
        }
        PhysNode::Check { input, props, .. }
        | PhysNode::BufCheck { input, props, .. }
        | PhysNode::Temp { input, props }
        | PhysNode::RidSink { input, props }
        | PhysNode::AntiJoinRids { input, props }
        | PhysNode::Limit { input, props, .. }
        | PhysNode::Insert { input, props, .. }
        | PhysNode::Gather { input, props, .. } => {
            check_passthrough_layout(node, input.props(), props, path, sink);
        }
        PhysNode::Exchange {
            input, keys, props, ..
        } => {
            for k in keys {
                check_col_resolves(
                    node,
                    *k,
                    &input.props().layout,
                    "exchange hash key",
                    path,
                    sink,
                );
            }
            check_passthrough_layout(node, input.props(), props, path, sink);
        }
    }
}

fn check_scan_layout(
    node: &PhysNode,
    qidx: usize,
    props: &PlanProps,
    path: &[usize],
    sink: &mut Sink,
) {
    for c in &props.layout {
        match c {
            LayoutCol::Base(b) if b.table == qidx => {}
            other => {
                sink.emit(
                    DiagCode::Pl002,
                    node,
                    path,
                    format!("scan of t{qidx} emits foreign layout column {other:?}"),
                );
                return;
            }
        }
    }
}

fn check_nljn_layout(
    node: &PhysNode,
    outer_layout: &[LayoutCol],
    inner_qidx: usize,
    inner_cols: Option<usize>,
    props: &PlanProps,
    path: &[usize],
    sink: &mut Sink,
) {
    let ok_prefix = props.layout.len() >= outer_layout.len()
        && props.layout[..outer_layout.len()] == *outer_layout;
    let suffix = if ok_prefix {
        &props.layout[outer_layout.len()..]
    } else {
        &[]
    };
    let ok_suffix = ok_prefix
        && suffix
            .iter()
            .enumerate()
            .all(|(i, c)| *c == LayoutCol::Base(ColId::new(inner_qidx, i)))
        && inner_cols.is_none_or(|n| suffix.len() == n);
    if !ok_prefix || !ok_suffix {
        sink.emit(
            DiagCode::Pl002,
            node,
            path,
            format!("NLJN layout must be outer layout then all columns of inner t{inner_qidx}"),
        );
    }
}

fn check_join_keys(
    node: &PhysNode,
    a: &[ColId],
    b: &[ColId],
    what: &str,
    path: &[usize],
    sink: &mut Sink,
) {
    if a.is_empty() || b.is_empty() {
        sink.emit(
            DiagCode::Pl003,
            node,
            path,
            format!("{what} has an empty join-key list"),
        );
    } else if a.len() != b.len() {
        sink.emit(
            DiagCode::Pl003,
            node,
            path,
            format!(
                "{what} key lists differ in length ({} vs {})",
                a.len(),
                b.len()
            ),
        );
    }
}

fn check_concat_layout(
    node: &PhysNode,
    a: &PlanProps,
    b: &PlanProps,
    props: &PlanProps,
    path: &[usize],
    sink: &mut Sink,
) {
    let expected: Vec<LayoutCol> = a.layout.iter().chain(b.layout.iter()).copied().collect();
    if props.layout != expected {
        sink.emit(
            DiagCode::Pl002,
            node,
            path,
            "join output layout is not the concatenation of its inputs".into(),
        );
    }
}

fn check_passthrough_layout(
    node: &PhysNode,
    input: &PlanProps,
    props: &PlanProps,
    path: &[usize],
    sink: &mut Sink,
) {
    if props.layout != input.layout {
        sink.emit(
            DiagCode::Pl002,
            node,
            path,
            format!(
                "{} must pass its input layout through unchanged",
                node.name()
            ),
        );
    }
}

fn check_col_resolves(
    node: &PhysNode,
    col: ColId,
    layout: &[LayoutCol],
    what: &str,
    path: &[usize],
    sink: &mut Sink,
) {
    if !layout.contains(&LayoutCol::Base(col)) {
        sink.emit(
            DiagCode::Pl001,
            node,
            path,
            format!("{what} {col} not in input layout"),
        );
    }
}

fn check_expr_resolves(
    node: &PhysNode,
    expr: &Expr,
    layout: &[LayoutCol],
    what: &str,
    path: &[usize],
    sink: &mut Sink,
) {
    for c in expr.columns_used() {
        check_col_resolves(node, c, layout, what, path, sink);
    }
}

/// Resolves column types through the query spec and catalog; both must be
/// present, otherwise every lookup answers `None` and the type rules stay
/// quiet.
struct TypeEnv<'a> {
    catalog: Option<&'a Catalog>,
    spec: Option<&'a pop_plan::QuerySpec>,
}

impl<'a> TypeEnv<'a> {
    fn new(ctx: &LintContext<'a>) -> Self {
        TypeEnv {
            catalog: ctx.catalog,
            spec: ctx.spec,
        }
    }

    fn schema_len(&self, table: &str) -> Option<usize> {
        Some(self.catalog?.table(table).ok()?.schema().len())
    }

    fn table_col_dtype(&self, table: &str, col: usize) -> Option<DataType> {
        let t = self.catalog?.table(table).ok()?;
        (col < t.schema().len()).then(|| t.schema().col(col).dtype)
    }

    fn dtype(&self, c: ColId) -> Option<DataType> {
        let tref = self.spec?.tables.get(c.table)?;
        self.table_col_dtype(&tref.table, c.col)
    }

    /// Text/non-text class: the only mismatch certain enough to report
    /// (ints, floats and day-number dates intermix legitimately).
    fn is_text(dt: DataType) -> bool {
        dt == DataType::Str
    }

    fn value_is_text(v: &Value) -> Option<bool> {
        match v {
            Value::Null => None,
            Value::Str(_) => Some(true),
            _ => Some(false),
        }
    }

    fn expr_is_text(&self, e: &Expr) -> Option<bool> {
        match e {
            Expr::Col(c) => self.dtype(*c).map(Self::is_text),
            Expr::Lit(v) => Self::value_is_text(v),
            _ => None,
        }
    }

    fn check_join_key_types(
        node: &PhysNode,
        key: ColId,
        a: DataType,
        b: DataType,
        path: &[usize],
        sink: &mut Sink,
    ) {
        if Self::is_text(a) != Self::is_text(b) {
            sink.emit(
                DiagCode::Pl004,
                node,
                path,
                format!("join key {key} compares {a} with {b}"),
            );
        }
    }

    fn check_key_pair_types(
        &self,
        node: &PhysNode,
        a: &[ColId],
        b: &[ColId],
        path: &[usize],
        sink: &mut Sink,
    ) {
        for (ka, kb) in a.iter().zip(b.iter()) {
            if let (Some(ta), Some(tb)) = (self.dtype(*ka), self.dtype(*kb)) {
                Self::check_join_key_types(node, *ka, ta, tb, path, sink);
            }
        }
    }

    /// Walk a predicate flagging text/non-text comparisons and LIKE over
    /// non-text columns.
    fn check_expr(&self, node: &PhysNode, expr: &Expr, path: &[usize], sink: &mut Sink) {
        if self.catalog.is_none() || self.spec.is_none() {
            return;
        }
        let mut findings: Vec<String> = Vec::new();
        expr.visit(&mut |e| match e {
            Expr::Cmp(op, a, b) => {
                if let (Some(ta), Some(tb)) = (self.expr_is_text(a), self.expr_is_text(b)) {
                    if ta != tb {
                        findings.push(format!("comparison ({a} {op} {b}) mixes text and non-text"));
                    }
                }
            }
            Expr::Between(x, lo, hi) => {
                if let Some(tx) = self.expr_is_text(x) {
                    for bound in [lo, hi] {
                        if self.expr_is_text(bound).is_some_and(|tb| tb != tx) {
                            findings.push(format!("BETWEEN bound {bound} mismatches {x}"));
                        }
                    }
                }
            }
            Expr::InList(x, vs) => {
                if let Some(tx) = self.expr_is_text(x) {
                    if vs
                        .iter()
                        .any(|v| Self::value_is_text(v).is_some_and(|tv| tv != tx))
                    {
                        findings.push(format!("IN list for {x} mixes text and non-text"));
                    }
                }
            }
            Expr::Like(x, _) if self.expr_is_text(x) == Some(false) => {
                findings.push(format!("LIKE applied to non-text expression {x}"));
            }
            _ => {}
        });
        for msg in findings {
            sink.emit(DiagCode::Pl004, node, path, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::*;
    use crate::{lint_plan, DiagCode, LintContext};
    use pop_expr::Expr;
    use pop_plan::{LayoutCol, PhysNode, QueryBuilder, SortKeyRef};
    use pop_storage::Catalog;
    use pop_types::{ColId, DataType, Schema, Value};

    fn diag_codes(plan: &PhysNode) -> Vec<&'static str> {
        codes(&lint_plan(plan, &LintContext::bare()))
    }

    #[test]
    fn pl001_unresolved_join_key() {
        // Build key t7.c0 resolves in neither child layout.
        let mut plan = hsjn(leaf(0, "a", 2, 10.0), leaf(1, "b", 2, 10.0), 5.0);
        if let PhysNode::Hsjn { build_keys, .. } = &mut plan {
            build_keys[0] = ColId::new(7, 0);
        }
        assert!(
            diag_codes(&plan).contains(&"PL001"),
            "{:?}",
            diag_codes(&plan)
        );
    }

    #[test]
    fn pl001_unresolved_filter_column() {
        let mut plan = leaf(0, "a", 2, 10.0);
        if let PhysNode::TableScan { pred, .. } = &mut plan {
            *pred = Some(Expr::col(0, 9).eq(Expr::lit(1i64)));
        }
        assert!(diag_codes(&plan).contains(&"PL001"));
    }

    #[test]
    fn pl001_unresolved_sort_key() {
        let input = leaf(0, "a", 2, 10.0);
        let props = input.props().clone();
        let sort = PhysNode::Sort {
            input: Box::new(input),
            key: SortKeyRef::Col(ColId::new(3, 3)),
            desc: false,
            props,
        };
        assert!(diag_codes(&sort).contains(&"PL001"));
    }

    #[test]
    fn pl002_join_layout_not_concatenation() {
        let mut plan = hsjn(leaf(0, "a", 2, 10.0), leaf(1, "b", 2, 10.0), 5.0);
        plan.props_mut().layout.pop(); // drop a column: no longer build++probe
        assert!(diag_codes(&plan).contains(&"PL002"));
    }

    #[test]
    fn pl002_passthrough_violation() {
        let input = leaf(0, "a", 2, 10.0);
        let mut t = temp(input);
        t.props_mut().layout = vec![LayoutCol::Base(ColId::new(0, 0))];
        assert!(diag_codes(&t).contains(&"PL002"));
    }

    #[test]
    fn pl003_empty_join_keys() {
        let mut plan = hsjn(leaf(0, "a", 2, 10.0), leaf(1, "b", 2, 10.0), 5.0);
        if let PhysNode::Hsjn { build_keys, .. } = &mut plan {
            build_keys.clear();
        }
        assert!(diag_codes(&plan).contains(&"PL003"));
    }

    #[test]
    fn pl003_having_position_out_of_range() {
        let input = leaf(0, "a", 2, 10.0);
        let props = input.props().clone();
        let h = PhysNode::Having {
            input: Box::new(input),
            preds: vec![pop_plan::HavingPred {
                pos: 9,
                op: pop_expr::CmpOp::Gt,
                value: Value::Int(1),
            }],
            props,
        };
        assert!(diag_codes(&h).contains(&"PL003"));
    }

    #[test]
    fn pl004_text_vs_int_comparison() {
        let cat = Catalog::new();
        cat.create_table(
            "a",
            Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]),
            vec![],
        )
        .unwrap();
        let mut b = QueryBuilder::new();
        let t = b.table("a");
        b.filter(t, Expr::col(t, 1).eq(Expr::lit(5i64)));
        let q = b.build().unwrap();
        let mut plan = leaf(0, "a", 2, 10.0);
        if let PhysNode::TableScan { pred, .. } = &mut plan {
            *pred = Some(Expr::col(0, 1).eq(Expr::lit(5i64))); // name = 5
        }
        let diags = lint_plan(&plan, &LintContext::full(&cat, &q));
        assert!(codes(&diags).contains(&"PL004"), "{diags:?}");
        assert!(diags.iter().all(|d| d.code != DiagCode::Pl001));
    }

    #[test]
    fn clean_aggregate_and_projection() {
        let input = leaf(0, "a", 3, 10.0);
        let mut props = input.props().clone();
        props.layout = vec![
            LayoutCol::Base(ColId::new(0, 1)),
            LayoutCol::Agg(0),
            LayoutCol::Agg(1),
        ];
        props.card = 3.0;
        props.cost += 10.0;
        let agg = PhysNode::HashAgg {
            input: Box::new(input),
            group_by: vec![ColId::new(0, 1)],
            aggs: vec![
                pop_plan::AggFunc::Count,
                pop_plan::AggFunc::Sum(ColId::new(0, 2)),
            ],
            props,
        };
        assert!(diag_codes(&agg).is_empty(), "{:?}", diag_codes(&agg));
    }

    #[test]
    fn pl002_wrong_aggregate_layout() {
        let input = leaf(0, "a", 3, 10.0);
        let mut props = input.props().clone();
        props.layout = vec![LayoutCol::Agg(0), LayoutCol::Base(ColId::new(0, 1))]; // wrong order
        let agg = PhysNode::HashAgg {
            input: Box::new(input),
            group_by: vec![ColId::new(0, 1)],
            aggs: vec![pop_plan::AggFunc::Count],
            props,
        };
        assert!(diag_codes(&agg).contains(&"PL002"));
    }
}
