//! Static plan-invariant analyzer ("planlint") for POP physical plans.
//!
//! POP's correctness rests on invariants that are produced in one layer and
//! consumed in another: validity ranges computed by the optimizer's
//! sensitivity analysis (§2.2) must bracket the optimizer's own estimate,
//! CHECK operators must be placed according to the Table 1 flavor rules
//! (§3), operator layouts must compose so the executor's column binding
//! cannot miss, and re-optimized plans may only reuse temporary MVs whose
//! recorded schema matches the subplan they replace (§2.3). This crate
//! checks all of them *statically*, between optimization and execution, so
//! a malformed plan is rejected up front instead of surfacing as a wrong
//! answer or a panic mid-query.
//!
//! The analyzer is a **dataflow framework**: a bottom-up abstract
//! interpreter ([`dataflow`]) computes, per node, a cardinality interval
//! (`[lo, hi]` bounds on the *actual* output cardinality, seeded from
//! live statistics — [`CardInterval`]) together with the
//! partitioning/materialization property lattice, via a generic
//! `transfer(op, inputs) -> AbstractState` function. Every lint pass
//! runs against those states in one shared pre-order walk; there are no
//! per-pass traversals.
//!
//! Eight passes run over the [`PhysNode`] tree:
//!
//! 1. **Schema/layout** (`PL0xx`) — every column reference in filters,
//!    join keys, aggregates, projections and sort keys resolves against
//!    the child's [`LayoutCol`] layout; every node's own output layout is
//!    consistent with its children; types agree where they are knowable.
//! 2. **Validity ranges** (`PL1xx`) — every [`CheckSpec`] and edge range
//!    is non-empty, well-formed, and brackets the estimate at that edge.
//! 3. **CHECK placement** (`PL2xx`) — the structural encoding of Table 1:
//!    LC only above materialized inputs, LCEM as a CHECK-above-TEMP pair,
//!    ECB only as BUFCHECK, ECWC only below a materialization point, ECDC
//!    only under a rid side-table sink; checkpoint ids unique.
//! 4. **Cost/cardinality sanity** (`PL3xx`) — cumulative cost is monotone
//!    up the tree; estimates are finite and non-negative.
//! 5. **MV reuse** (`PL4xx`) — every MVSCAN names a registered temp MV
//!    whose recorded layout matches the scan's output layout.
//! 6. **Parallel boundaries** (`PL304`–`PL306`) — GATHER is exactly the
//!    serial/parallel boundary (partitioned input, `Single` output, no
//!    nesting, no partitioned node leaking above it), EXCHANGE hash keys
//!    are covered by the downstream consumer's keys, and CHECK
//!    partitioning agrees with fold registration (a partitioned CHECK
//!    folds into the shared global counter; BUFCHECK is never
//!    partitioned).
//! 7. **Interval analyses** (`PL41x`) — the CHECK-coverage proof (a
//!    risky edge must meet a CHECK or materialization point before the
//!    next pipeline breaker, else `PL411`) and validity-range
//!    reachability (`PL412` dead checks that can never fire, `PL413`
//!    vacuous checks that always fire). These require a
//!    [`pop_stats::StatsRegistry`] in the context; without one the
//!    intervals are unknown and the pass is silent.
//! 8. **Monitor coverage** (`PL42x`) — the runtime complement of the
//!    CHECK-coverage proof: every risky edge must be either
//!    CHECK-dominated or observed by a continuous suboptimality monitor
//!    (`PL421` when neither holds — the uncoverable case being a risky
//!    edge inside a parallel region, whose worker contexts run
//!    unmonitored). Gated on `LintOptions::expect_monitor_coverage`.
//!
//! [`certify`] distils the same interpretation into a per-plan
//! [`RobustnessCertificate`] — guarded edges, uncovered residual risk,
//! worst-case re-optimization depth — that the driver attaches to its
//! run report.
//!
//! The analyzer is advisory: it returns a flat [`Vec<PlanDiagnostic>`]
//! and never mutates the plan. The POP driver decides what to do with
//! `Deny` findings (see `pop::LintMode`).
//!
//! The analyzer is independent of the executor's data-flow granularity:
//! the runtime moves rows in batches (`pop_exec::RowBatch`, selection
//! vectors and all), but batch boundaries carry no plan-level semantics —
//! every invariant checked here constrains the *row stream* an operator
//! produces, which is identical at any batch size. Nothing in this crate
//! may ever key off `PopConfig::batch_size`.

#![forbid(unsafe_code)]

mod certificate;
mod cost;
mod dataflow;
mod diag;
mod domain;
mod layout;
mod mv;
mod parallel;
mod placement;
mod validity;

pub use certificate::{certify, RobustnessCertificate};
pub use diag::{DiagCode, PlanDiagnostic, Severity};
pub use domain::CardInterval;

use pop_guard::CleanupRegistry;
use pop_plan::{PhysNode, QuerySpec};
use pop_stats::StatsRegistry;
use pop_storage::Catalog;

/// Default [`LintOptions::risk_threshold`]: report an edge as risky as
/// soon as its cardinality can leave the validity range at all.
pub const DEFAULT_RISK_THRESHOLD: f64 = 1.0;

/// Tunable behaviour of the analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LintOptions {
    /// Expect every materialization point (SORT/TEMP) to be guarded by a
    /// checkpoint (`PL104`), and every risky edge to be dominated by a
    /// CHECK or materialization point before the next pipeline breaker
    /// (`PL411`). Only meaningful when POP placed checkpoints at all, so
    /// the rules stay quiet on plans with no checks (e.g. below the cost
    /// threshold). The driver enables this when the LC flavor is on.
    pub expect_check_coverage: bool,
    /// How far a cardinality interval must escape an edge's validity
    /// range (max of `interval.hi / range.hi` and `range.lo /
    /// interval.lo`) before the edge counts as *risky* for `PL411` and
    /// the robustness certificate. `1.0` means any provable escape;
    /// larger values tolerate proportionally wider excursions.
    pub risk_threshold: f64,
    /// Expect every risky edge to be either CHECK-dominated or observed
    /// by a continuous suboptimality monitor (`PL421`). The driver
    /// enables this when the monitor layer is on; the uncoverable case
    /// is a risky edge inside a parallel region, whose node runs on a
    /// worker context that carries no monitors.
    pub expect_monitor_coverage: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            expect_check_coverage: false,
            risk_threshold: DEFAULT_RISK_THRESHOLD,
            expect_monitor_coverage: false,
        }
    }
}

/// What the analyzer may consult besides the plan itself. Both references
/// are optional: without a catalog the MV pass and type checks are
/// skipped; without a query spec only layout-internal checks run.
#[derive(Clone, Copy)]
pub struct LintContext<'a> {
    /// Catalog, for temp-MV lookups, inner-table schemas and column types.
    pub catalog: Option<&'a Catalog>,
    /// The query spec the plan was compiled from, for type resolution.
    pub spec: Option<&'a QuerySpec>,
    /// Per-query cleanup registry: which side tables (ECDC rid side
    /// tables) have cleanup registered. When supplied, every ECDC
    /// checkpoint's side table must be covered (`PL208`); `None` skips
    /// the rule (external analysis without a running query).
    pub cleanups: Option<&'a CleanupRegistry>,
    /// Live table statistics, seeding the leaf cardinality intervals of
    /// the abstract interpreter. Without them every interval is unknown
    /// (`[0, inf)`) and the interval analyses (`PL41x`) stay silent.
    pub stats: Option<&'a StatsRegistry>,
    /// Options.
    pub options: LintOptions,
}

impl std::fmt::Debug for LintContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LintContext")
            .field("catalog", &self.catalog.is_some())
            .field("spec", &self.spec.is_some())
            .field("cleanups", &self.cleanups.is_some())
            .field("stats", &self.stats.is_some())
            .field("options", &self.options)
            .finish()
    }
}

impl<'a> LintContext<'a> {
    /// Context with no external information: structural checks only.
    pub fn bare() -> Self {
        LintContext {
            catalog: None,
            spec: None,
            cleanups: None,
            stats: None,
            options: LintOptions::default(),
        }
    }

    /// Full context: catalog and query spec available.
    pub fn full(catalog: &'a Catalog, spec: &'a QuerySpec) -> Self {
        LintContext {
            catalog: Some(catalog),
            spec: Some(spec),
            cleanups: None,
            stats: None,
            options: LintOptions::default(),
        }
    }

    /// Set [`LintOptions::expect_check_coverage`].
    pub fn expect_check_coverage(mut self, on: bool) -> Self {
        self.options.expect_check_coverage = on;
        self
    }

    /// Set [`LintOptions::expect_monitor_coverage`].
    pub fn expect_monitor_coverage(mut self, on: bool) -> Self {
        self.options.expect_monitor_coverage = on;
        self
    }

    /// Supply live table statistics, seeding the leaf intervals of the
    /// abstract interpreter and enabling the `PL41x` analyses.
    pub fn with_stats(mut self, stats: &'a StatsRegistry) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Set [`LintOptions::risk_threshold`]. Non-finite or sub-1.0 values
    /// are clamped to the default.
    pub fn risk_threshold(mut self, threshold: f64) -> Self {
        self.options.risk_threshold = if threshold.is_finite() && threshold >= 1.0 {
            threshold
        } else {
            DEFAULT_RISK_THRESHOLD
        };
        self
    }

    /// Supply the per-query [`CleanupRegistry`], enabling the `PL208`
    /// rule: every ECDC checkpoint's rid side table must have its
    /// cleanup registered before the plan may execute.
    pub fn with_cleanups(mut self, cleanups: &'a CleanupRegistry) -> Self {
        self.cleanups = Some(cleanups);
        self
    }
}

/// One ancestor step of the walk: the ancestor node and which child edge
/// the walk descended through.
#[derive(Clone, Copy)]
pub(crate) struct Frame<'a> {
    pub(crate) node: &'a PhysNode,
    pub(crate) child_idx: usize,
}

/// Collects diagnostics during the walk.
pub(crate) struct Sink {
    diags: Vec<PlanDiagnostic>,
}

impl Sink {
    pub(crate) fn emit(
        &mut self,
        code: DiagCode,
        node: &PhysNode,
        path: &[usize],
        message: String,
    ) {
        self.diags.push(PlanDiagnostic {
            code,
            severity: code.severity(),
            node: node.name(),
            path: render_path(path),
            message,
        });
    }
}

/// Render a child-index path as `$`, `$.0`, `$.0.1`, ...
fn render_path(path: &[usize]) -> String {
    let mut s = String::from("$");
    for i in path {
        s.push('.');
        s.push_str(&i.to_string());
    }
    s
}

/// Look through CHECK/BUFCHECK wrappers to the node they guard.
pub(crate) fn through_checks(mut node: &PhysNode) -> &PhysNode {
    while let PhysNode::Check { input, .. } | PhysNode::BufCheck { input, .. } = node {
        node = input;
    }
    node
}

/// Run all eight passes over `plan` and return every finding, in tree
/// pre-order (whole-plan rules like duplicate-id detection come last).
///
/// Phase 1 abstract-interprets the plan bottom-up ([`dataflow`]); phase 2
/// walks the tree pre-order handing every pass the node together with its
/// computed [`dataflow`] states.
pub fn lint_plan(plan: &PhysNode, ctx: &LintContext<'_>) -> Vec<PlanDiagnostic> {
    let mut sink = Sink { diags: Vec::new() };
    let states = dataflow::interpret(plan, ctx);
    let mut layout = layout::LayoutPass;
    let mut validity = validity::ValidityPass;
    let mut placement = placement::PlacementPass::new();
    let mut cost = cost::CostPass;
    let mut mv = mv::MvPass;
    let mut parallel = parallel::ParallelPass;
    let mut risk = dataflow::RiskPass::new();
    let mut monitor = dataflow::MonitorPass;
    let mut passes: [&mut dyn dataflow::Pass; 8] = [
        &mut layout,
        &mut validity,
        &mut placement,
        &mut cost,
        &mut mv,
        &mut parallel,
        &mut risk,
        &mut monitor,
    ];
    dataflow::drive(plan, ctx, &states, &mut passes, &mut sink);
    sink.diags
}

/// The abstract interpretation itself, exposed for cross-validation: the
/// path, optimizer estimate and computed cardinality interval of every
/// node, in pre-order.
pub fn plan_intervals(plan: &PhysNode, ctx: &LintContext<'_>) -> Vec<(String, f64, CardInterval)> {
    let states = dataflow::interpret(plan, ctx);
    let mut meta: Vec<(String, f64)> = Vec::new();
    let mut path = Vec::new();
    collect_meta(plan, &mut path, &mut meta);
    meta.into_iter()
        .zip(states.states())
        .map(|((p, est), st)| (p, est, st.interval))
        .collect()
}

fn collect_meta(node: &PhysNode, path: &mut Vec<usize>, out: &mut Vec<(String, f64)>) {
    out.push((render_path(path), node.props().card));
    for (i, child) in node.children().into_iter().enumerate() {
        path.push(i);
        collect_meta(child, path, out);
        path.pop();
    }
}

/// True iff any finding is `Deny`-severity.
pub fn has_deny(diags: &[PlanDiagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

/// The `Deny`-severity findings, rendered one per line (for error
/// messages).
pub fn deny_summary(diags: &[PlanDiagnostic]) -> String {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Builders for small (and deliberately broken) plans used across the
    //! pass tests.

    use pop_plan::{
        CheckContext, CheckFlavor, CheckSpec, LayoutCol, PhysNode, PlanProps, TableSet,
        ValidityRange,
    };
    use pop_types::ColId;

    /// A scan of query table `qidx` with `ncols` columns.
    pub fn leaf(qidx: usize, table: &str, ncols: usize, card: f64) -> PhysNode {
        PhysNode::TableScan {
            qidx,
            table: table.into(),
            pred: None,
            props: PlanProps::leaf(
                TableSet::single(qidx),
                card,
                card,
                (0..ncols)
                    .map(|c| LayoutCol::Base(ColId::new(qidx, c)))
                    .collect(),
            ),
        }
    }

    /// Hash join of two subplans on `(0,0) = (1,0)` with a correctly
    /// composed layout.
    pub fn hsjn(build: PhysNode, probe: PhysNode, card: f64) -> PhysNode {
        let props = PlanProps {
            tables: build.props().tables.union(probe.props().tables),
            card,
            cost: build.props().cost + probe.props().cost + card,
            layout: build
                .props()
                .layout
                .iter()
                .chain(probe.props().layout.iter())
                .copied()
                .collect(),
            sorted_by: None,
            edge_ranges: vec![ValidityRange::unbounded(), ValidityRange::unbounded()],
            partitioning: pop_plan::Partitioning::Single,
        };
        PhysNode::Hsjn {
            build: Box::new(build),
            probe: Box::new(probe),
            build_keys: vec![ColId::new(0, 0)],
            probe_keys: vec![ColId::new(1, 0)],
            props,
        }
    }

    /// A TEMP wrapper (pass-through layout, cost bumped).
    pub fn temp(input: PhysNode) -> PhysNode {
        let mut props = input.props().clone();
        props.cost += props.card;
        props.edge_ranges = vec![ValidityRange::unbounded()];
        PhysNode::Temp {
            input: Box::new(input),
            props,
        }
    }

    /// A CHECK wrapper with the given flavor/context and a range
    /// bracketing the input's estimate.
    pub fn check(input: PhysNode, flavor: CheckFlavor, context: CheckContext) -> PhysNode {
        let est = input.props().card;
        check_with_range(
            input,
            flavor,
            context,
            ValidityRange::new(0.0, est * 10.0 + 10.0),
        )
    }

    /// A CHECK wrapper with an explicit range.
    pub fn check_with_range(
        input: PhysNode,
        flavor: CheckFlavor,
        context: CheckContext,
        range: ValidityRange,
    ) -> PhysNode {
        let mut props = input.props().clone();
        props.cost += props.card;
        props.edge_ranges = vec![range];
        PhysNode::Check {
            spec: CheckSpec {
                id: 0,
                flavor,
                range,
                est_card: input.props().card,
                signature: "sig".into(),
                context,
                fold: false,
            },
            input: Box::new(input),
            props,
        }
    }

    /// Diagnostics of a given code within a finding list.
    pub fn codes(diags: &[crate::PlanDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use pop_expr::{Expr, Params};
    use pop_optimizer::{optimize, FeedbackCache, FlavorSet, OptimizerConfig, OptimizerContext};
    use pop_plan::{CostModel, QueryBuilder};
    use pop_stats::StatsRegistry;
    use pop_storage::IndexKind;
    use pop_types::{DataType, Schema, Value};

    fn setup() -> (Catalog, StatsRegistry) {
        let cat = Catalog::new();
        cat.create_table(
            "customer",
            Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]),
            (0..200)
                .map(|i| vec![Value::Int(i), Value::Int(i % 20)])
                .collect(),
        )
        .unwrap();
        cat.create_table(
            "orders",
            Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
            (0..20_000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 200)])
                .collect(),
        )
        .unwrap();
        cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
        let stats = StatsRegistry::new();
        stats.analyze_all(&cat).unwrap();
        (cat, stats)
    }

    fn optimize_with(flavors: FlavorSet) -> (Catalog, pop_plan::QuerySpec, PhysNode) {
        let (cat, stats) = setup();
        let cfg = OptimizerConfig {
            flavors,
            ..OptimizerConfig::default()
        };
        let cost = CostModel::default();
        let fb = FeedbackCache::new();
        let mut b = QueryBuilder::new();
        let c = b.table("customer");
        let o = b.table("orders");
        b.join(c, 0, o, 1);
        b.filter(c, Expr::col(c, 1).eq(Expr::lit(3i64)));
        let q = b.build().unwrap();
        let params = Params::none();
        let plan = {
            let octx = OptimizerContext::new(&cat, &stats, &cfg, &cost, Some(&params), &fb);
            optimize(&q, &octx).unwrap()
        };
        (cat, q, plan)
    }

    #[test]
    fn real_plan_lints_clean() {
        let (cat, q, plan) = optimize_with(FlavorSet::default());
        let ctx = LintContext::full(&cat, &q).expect_check_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert!(diags.is_empty(), "expected no findings, got: {diags:?}");
    }

    #[test]
    fn real_plan_lints_clean_with_all_flavors() {
        let (cat, q, plan) = optimize_with(FlavorSet {
            lc: true,
            lcem: true,
            ecb: true,
            ecwc: true,
            ecdc: true,
        });
        let ctx = LintContext::full(&cat, &q).expect_check_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert!(diags.is_empty(), "expected no findings, got: {diags:?}");
    }

    #[test]
    fn real_parallel_plan_lints_clean() {
        let (cat, stats) = setup();
        let cfg = OptimizerConfig {
            threads: 4,
            min_parallel_rows: 0.0,
            ..OptimizerConfig::default()
        };
        let cost = CostModel::default();
        let fb = FeedbackCache::new();
        let mut b = QueryBuilder::new();
        let c = b.table("customer");
        let o = b.table("orders");
        b.join(c, 0, o, 1);
        b.aggregate(&[(c, 1)], vec![pop_plan::AggFunc::Count]);
        let q = b.build().unwrap();
        let params = Params::none();
        let plan = {
            let octx = OptimizerContext::new(&cat, &stats, &cfg, &cost, Some(&params), &fb);
            optimize(&q, &octx).unwrap()
        };
        let mut has_gather = false;
        plan.visit(&mut |n| has_gather |= matches!(n, PhysNode::Gather { .. }));
        assert!(has_gather, "expected a parallel region:\n{plan}");
        let ctx = LintContext::full(&cat, &q).expect_check_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert!(diags.is_empty(), "expected no findings, got: {diags:?}");
    }

    #[test]
    fn well_formed_handbuilt_plan_is_clean() {
        let plan = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0);
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }

    #[test]
    fn deny_helpers() {
        let mut bad = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0);
        bad.props_mut().card = f64::NAN;
        let diags = lint_plan(&bad, &LintContext::bare());
        assert!(has_deny(&diags));
        assert!(deny_summary(&diags).contains("PL302"));
        let good = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0);
        assert!(!has_deny(&lint_plan(&good, &LintContext::bare())));
    }

    #[test]
    fn path_rendering() {
        assert_eq!(render_path(&[]), "$");
        assert_eq!(render_path(&[0, 1]), "$.0.1");
    }

    // ---- PL421: monitor-coverage proof ------------------------------

    use pop_plan::{Partitioning, TableSet, ValidityRange};

    fn gather(input: PhysNode, parts: usize) -> PhysNode {
        let mut props = input.props().clone();
        props.partitioning = Partitioning::Single;
        props.edge_ranges = vec![ValidityRange::unbounded()];
        PhysNode::Gather {
            input: Box::new(input),
            parts,
            props,
        }
    }

    /// `customer ⋈ orders` where the optimizer lies small about one side:
    /// the edge's validity range brackets the (bad) estimate, but the
    /// stats-seeded interval proves the actual cardinality escapes it.
    /// `risky_build` puts the lie on the hash-join build side (consumed
    /// unguarded at the breaker), otherwise on the probe side (the risk
    /// survives to the root).
    fn risky_hsjn(risky_build: bool, partitioned: bool) -> PhysNode {
        let (build_est, probe_est) = if risky_build {
            (5.0, 20_000.0)
        } else {
            (200.0, 5.0)
        };
        let build = leaf(0, "customer", 2, build_est);
        let mut probe = leaf(1, "orders", 2, probe_est);
        if partitioned {
            probe.props_mut().partitioning = Partitioning::Range(4);
        }
        let mut join = hsjn(build, probe, 20_000.0);
        join.props_mut().edge_ranges = if risky_build {
            vec![ValidityRange::new(0.0, 10.0), ValidityRange::unbounded()]
        } else {
            vec![ValidityRange::unbounded(), ValidityRange::new(0.0, 10.0)]
        };
        if partitioned {
            join.props_mut().partitioning = Partitioning::Range(4);
        }
        join
    }

    #[test]
    fn pl421_serial_risky_edges_are_monitor_covered() {
        let (_, stats) = setup();
        for risky_build in [true, false] {
            let plan = risky_hsjn(risky_build, false);
            let ctx = LintContext::bare()
                .with_stats(&stats)
                .expect_monitor_coverage(true);
            let diags = lint_plan(&plan, &ctx);
            assert!(diags.is_empty(), "risky_build={risky_build}: {diags:?}");
        }
    }

    #[test]
    fn pl421_region_risky_edges_are_monitor_covered() {
        let (_, stats) = setup();
        // Inside a parallel region the controller folds each monitored
        // node's counts into a shared cell, so both the breaker-consumed
        // build edge and the root-surviving probe edge stay covered.
        for risky_build in [true, false] {
            let plan = gather(risky_hsjn(risky_build, true), 4);
            let ctx = LintContext::bare()
                .with_stats(&stats)
                .expect_monitor_coverage(true);
            let diags = lint_plan(&plan, &ctx);
            assert!(diags.is_empty(), "risky_build={risky_build}: {diags:?}");
            // Without the option the pass is silent.
            let off = LintContext::bare().with_stats(&stats);
            assert!(lint_plan(&plan, &off).is_empty());
            // Without stats nothing is provable.
            let blind = LintContext::bare().expect_monitor_coverage(true);
            assert!(lint_plan(&plan, &blind).is_empty());
        }
    }

    #[test]
    fn pl421_reports_edge_with_no_feedback_signature() {
        let (_, stats) = setup();
        // A build side with an empty table set has no feedback signature,
        // so the driver cannot install a monitor on it: the risky edge is
        // neither CHECK-dominated nor monitor-covered.
        let mut plan = risky_hsjn(true, false);
        let PhysNode::Hsjn { build, .. } = &mut plan else {
            unreachable!()
        };
        build.props_mut().tables = TableSet::EMPTY;
        let ctx = LintContext::bare()
            .with_stats(&stats)
            .expect_monitor_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert_eq!(codes(&diags), vec!["PL421"], "{diags:?}");
        assert!(diags[0].message.contains("monitor"), "{}", diags[0].message);
    }

    #[test]
    fn pl421_checked_build_edge_is_dominated() {
        let (_, stats) = setup();
        // The build side feeds through TEMP+CHECK: the checkpoint
        // observes the cardinality, so the edge is CHECK-dominated and
        // needs no monitor even inside the region.
        let build = check_with_range(
            temp(leaf(0, "customer", 2, 5.0)),
            pop_plan::CheckFlavor::Lc,
            pop_plan::CheckContext::AboveTemp,
            ValidityRange::unbounded(),
        );
        let mut probe = leaf(1, "orders", 2, 20_000.0);
        probe.props_mut().partitioning = Partitioning::Range(4);
        let mut join = hsjn(build, probe, 20_000.0);
        join.props_mut().edge_ranges =
            vec![ValidityRange::new(0.0, 10.0), ValidityRange::unbounded()];
        join.props_mut().partitioning = Partitioning::Range(4);
        let plan = gather(join, 4);
        let ctx = LintContext::bare()
            .with_stats(&stats)
            .expect_monitor_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
