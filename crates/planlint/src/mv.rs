//! Pass 5: temp-MV reuse soundness (`PL401`–`PL403`).
//!
//! Re-optimization substitutes MVSCAN nodes for subplans whose results
//! were materialized in an earlier execution step (§2.3). The scan is only
//! sound if the catalog actually holds a temp MV under that signature and
//! its recorded layout matches the scan's output layout — otherwise the
//! executor would read rows under the wrong column interpretation.
//!
//! Requires a catalog in the [`LintContext`]; skipped without one.

use crate::dataflow::{NodeCx, Pass};
use crate::{DiagCode, LintContext, Sink};
use pop_plan::{LayoutCol, PhysNode};

pub(crate) struct MvPass;

impl Pass for MvPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink) {
        check_node(cx.node, ctx, cx.path, sink);
    }
}

fn check_node(node: &PhysNode, ctx: &LintContext<'_>, path: &[usize], sink: &mut Sink) {
    let (
        PhysNode::MvScan {
            mv_name,
            signature,
            props,
        },
        Some(catalog),
    ) = (node, ctx.catalog)
    else {
        return;
    };
    let Some(mv) = catalog.temp_mv(signature) else {
        sink.emit(
            DiagCode::Pl401,
            node,
            path,
            format!("no temp MV registered for signature '{signature}'"),
        );
        return;
    };
    if mv.table.name() != mv_name {
        sink.emit(
            DiagCode::Pl402,
            node,
            path,
            format!(
                "MV scan names table '{mv_name}' but signature resolves to '{}'",
                mv.table.name()
            ),
        );
    }
    let expected: Vec<LayoutCol> = mv.layout.iter().map(|c| LayoutCol::Base(*c)).collect();
    if props.layout != expected {
        sink.emit(
            DiagCode::Pl402,
            node,
            path,
            format!(
                "MV scan layout ({} columns) does not match the recorded MV layout ({} columns)",
                props.layout.len(),
                mv.layout.len()
            ),
        );
    }
    if mv.table.schema().len() != mv.layout.len() {
        sink.emit(
            DiagCode::Pl402,
            node,
            path,
            format!(
                "MV backing table has {} columns but the recorded layout has {}",
                mv.table.schema().len(),
                mv.layout.len()
            ),
        );
    }
    let actual = mv.actual_card as f64;
    if props.card.is_finite() && (props.card - actual).abs() > 0.5 + 1e-6 * actual {
        sink.emit(
            DiagCode::Pl403,
            node,
            path,
            format!(
                "MV scan estimates {:.0} rows but the MV holds exactly {actual:.0}",
                props.card
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;
    use crate::{lint_plan, LintContext};
    use pop_plan::{LayoutCol, PhysNode, PlanProps, TableSet};
    use pop_storage::{Catalog, Table, TempMv};
    use pop_types::{ColId, ColumnDef, DataType, Schema};
    use std::sync::Arc;

    fn catalog_with_mv(sig: &str, cols: usize) -> Catalog {
        let cat = Catalog::new();
        let schema = Schema::new(
            (0..cols)
                .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int))
                .collect(),
        );
        let id = cat.allocate_temp_id();
        let table = Arc::new(Table::new(id, "__pop_mv_0", schema, vec![vec![]; 7]));
        cat.register_temp_mv(TempMv {
            table,
            signature: sig.into(),
            layout: (0..cols).map(|c| ColId::new(0, c)).collect(),
            actual_card: 7,
            lineage: None,
        });
        cat
    }

    fn mvscan(name: &str, sig: &str, cols: usize, card: f64) -> PhysNode {
        PhysNode::MvScan {
            mv_name: name.into(),
            signature: sig.into(),
            props: PlanProps::leaf(
                TableSet::single(0),
                card,
                card,
                (0..cols)
                    .map(|c| LayoutCol::Base(ColId::new(0, c)))
                    .collect(),
            ),
        }
    }

    fn lint_against(cat: &Catalog, plan: &PhysNode) -> Vec<&'static str> {
        let ctx = LintContext {
            catalog: Some(cat),
            spec: None,
            cleanups: None,
            stats: None,
            options: crate::LintOptions::default(),
        };
        codes(&lint_plan(plan, &ctx))
    }

    #[test]
    fn pl401_unknown_signature() {
        let cat = catalog_with_mv("known", 2);
        let plan = mvscan("__pop_mv_0", "unknown", 2, 7.0);
        assert!(lint_against(&cat, &plan).contains(&"PL401"));
    }

    #[test]
    fn pl402_layout_width_mismatch() {
        let cat = catalog_with_mv("sig", 3);
        let plan = mvscan("__pop_mv_0", "sig", 2, 7.0); // 2 cols vs recorded 3
        assert!(lint_against(&cat, &plan).contains(&"PL402"));
    }

    #[test]
    fn pl402_name_mismatch() {
        let cat = catalog_with_mv("sig", 2);
        let plan = mvscan("some_other_table", "sig", 2, 7.0);
        assert!(lint_against(&cat, &plan).contains(&"PL402"));
    }

    #[test]
    fn pl403_cardinality_drift() {
        let cat = catalog_with_mv("sig", 2);
        let plan = mvscan("__pop_mv_0", "sig", 2, 900.0); // MV holds exactly 7
        let diags = lint_against(&cat, &plan);
        assert!(diags.contains(&"PL403"), "{diags:?}");
    }

    #[test]
    fn matching_mv_scan_is_clean() {
        let cat = catalog_with_mv("sig", 2);
        let plan = mvscan("__pop_mv_0", "sig", 2, 7.0);
        assert!(lint_against(&cat, &plan).is_empty());
    }

    #[test]
    fn no_catalog_no_mv_findings() {
        let plan = mvscan("__pop_mv_0", "sig", 2, 7.0);
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }
}
