//! Pass 6: parallel-region invariants (`PL304`–`PL306`).
//!
//! The parallelize post-pass produces `Gather` regions whose interior
//! nodes carry a non-`Single` [`Partitioning`] and whose CHECKs are
//! fold-registered. The executor's region controller relies on these
//! properties lining up:
//!
//! * `PL304` — every `Gather` is a clean serial/parallel boundary: its
//!   own output is `Single`, its input is partitioned with a matching
//!   partition count, and no partitioned node leaks outside a region
//!   (partitioned output must feed a partitioned consumer or the region's
//!   own `Gather`). Nested regions are rejected the same way: a `Gather`
//!   or `Exchange` under a partitioned parent spine is a boundary error
//!   (`Exchange` being the one legal partitioned-under-partitioned
//!   repartitioner, checked separately).
//! * `PL305` — an `Exchange` hash-routes rows on its keys so each
//!   consumer partition owns complete key groups; that is only sound if
//!   the downstream consumer keys on a superset: every exchange key must
//!   appear in the consuming aggregation's group-by.
//! * `PL306` — a CHECK inside a region sees only its partition's rows, so
//!   comparing its local count against the (global) validity range is
//!   meaningless: partitioned CHECKs must be fold-registered
//!   (`CheckSpec::fold`), serial CHECKs must not be, and BUFCHECK (which
//!   has no fold path) must never be partitioned.

use crate::dataflow::{NodeCx, Pass};
use crate::{DiagCode, Frame, LintContext, Sink};
use pop_plan::{Partitioning, PhysNode};

pub(crate) struct ParallelPass;

impl Pass for ParallelPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, _ctx: &LintContext<'_>, sink: &mut Sink) {
        check_node(cx, sink);
    }
}

fn check_node(cx: &NodeCx<'_, '_>, sink: &mut Sink) {
    let (node, frames, path) = (cx.node, cx.frames, cx.path);
    let parent = frames.last().map(|f| f.node);
    // Partition distributions come from the abstract states, not raw
    // props: the transfer function mirrors them into the lattice.
    let part = &cx.state.partitioning;

    match node {
        PhysNode::Gather { parts, .. } => {
            if part.is_partitioned() {
                sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    format!("GATHER output must be serial, found {part}"),
                );
            }
            let inpart = &cx.children[0].partitioning;
            if !inpart.is_partitioned() {
                sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    "GATHER input is not partitioned".into(),
                );
            } else if inpart.parts() != *parts {
                sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    format!("GATHER over {parts} partitions but input is {inpart}"),
                );
            }
            if parent_is_partitioned(parent) {
                sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    "GATHER nested inside a parallel region".into(),
                );
            }
        }
        PhysNode::Exchange { keys, parts, .. } => {
            if !cx.children[0].partitioning.is_partitioned() {
                sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    "EXCHANGE over a serial input".into(),
                );
            }
            match part {
                Partitioning::Hash(pkeys, k) => {
                    if pkeys != keys || k != parts {
                        sink.emit(
                            DiagCode::Pl304,
                            node,
                            path,
                            format!(
                                "EXCHANGE output partitioning {part} disagrees with its \
                                 {} keys over {parts} partitions",
                                keys.len()
                            ),
                        );
                    }
                }
                other => sink.emit(
                    DiagCode::Pl304,
                    node,
                    path,
                    format!("EXCHANGE output must be hash-partitioned, found {other}"),
                ),
            }
            if keys.is_empty() {
                sink.emit(
                    DiagCode::Pl305,
                    node,
                    path,
                    "EXCHANGE with no hash keys".into(),
                );
            } else if let Some(PhysNode::HashAgg { group_by, .. }) = consumer_of(frames) {
                if let Some(k) = keys.iter().find(|k| !group_by.contains(k)) {
                    sink.emit(
                        DiagCode::Pl305,
                        node,
                        path,
                        format!(
                            "exchange key {k:?} is not among the downstream \
                             aggregation's group-by keys"
                        ),
                    );
                }
            }
        }
        PhysNode::Check { spec, .. } => {
            if part.is_partitioned() && !spec.fold {
                sink.emit(
                    DiagCode::Pl306,
                    node,
                    path,
                    format!(
                        "CHECK #{} runs partitioned ({part}) without fold registration: \
                         its local count cannot be compared to the global range",
                        spec.id
                    ),
                );
            }
            if !part.is_partitioned() && spec.fold {
                sink.emit(
                    DiagCode::Pl306,
                    node,
                    path,
                    format!("CHECK #{} is fold-registered but runs serially", spec.id),
                );
            }
        }
        PhysNode::BufCheck { spec, .. } if part.is_partitioned() || spec.fold => {
            sink.emit(
                DiagCode::Pl306,
                node,
                path,
                format!(
                    "BUFCHECK #{} inside a parallel region: BUFCHECK has no fold path",
                    spec.id
                ),
            );
        }
        _ => {}
    }

    // A partitioned stream must terminate at its region's GATHER: a
    // partitioned node whose consumer is serial and not a GATHER leaks
    // partitioned rows into serial operators.
    if part.is_partitioned() && !matches!(node, PhysNode::Gather { .. }) {
        let ok = match parent {
            Some(PhysNode::Gather { .. }) => true,
            Some(PhysNode::Hsjn { .. } | PhysNode::Nljn { .. }) => {
                // Probe/outer spines are partitioned with the join; build
                // sides are serial children and never reach this branch.
                parent_is_partitioned(parent)
            }
            Some(p) => p.props().partitioning.is_partitioned(),
            None => false,
        };
        if !ok {
            sink.emit(
                DiagCode::Pl304,
                node,
                path,
                format!("partitioned output ({part}) is not consumed by a parallel region"),
            );
        }
    }
}

fn parent_is_partitioned(parent: Option<&PhysNode>) -> bool {
    parent.is_some_and(|p| p.props().partitioning.is_partitioned())
}

/// Nearest ancestor that is not a partitioned pass-through wrapper —
/// the operator that actually consumes the exchange's key distribution.
fn consumer_of<'a>(frames: &[Frame<'a>]) -> Option<&'a PhysNode> {
    frames.iter().rev().map(|f| f.node).find(|n| {
        !matches!(
            n,
            PhysNode::Check { .. } | PhysNode::Project { .. } | PhysNode::Having { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use crate::testutil::*;
    use crate::{lint_plan, LintContext};
    use pop_plan::{
        AggFunc, LayoutCol, Partitioning, PhysNode, PlanProps, TableSet, ValidityRange,
    };
    use pop_types::ColId;

    fn partitioned_leaf(card: f64, k: usize) -> PhysNode {
        let mut n = leaf(0, "t", 2, card);
        n.props_mut().partitioning = Partitioning::Range(k);
        n
    }

    fn gather(input: PhysNode, parts: usize) -> PhysNode {
        let mut props = input.props().clone();
        props.partitioning = Partitioning::Single;
        props.edge_ranges = vec![ValidityRange::unbounded()];
        PhysNode::Gather {
            input: Box::new(input),
            parts,
            props,
        }
    }

    #[test]
    fn well_formed_region_is_clean() {
        let plan = gather(partitioned_leaf(100.0, 4), 4);
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pl304_gather_over_serial_input() {
        let plan = gather(leaf(0, "t", 2, 100.0), 4);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL304"));
    }

    #[test]
    fn pl304_partition_count_mismatch() {
        let plan = gather(partitioned_leaf(100.0, 2), 4);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL304"));
    }

    #[test]
    fn pl304_partitioned_root_leaks() {
        let plan = partitioned_leaf(100.0, 4);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL304"));
    }

    #[test]
    fn pl304_gather_output_partitioned() {
        let mut plan = gather(partitioned_leaf(100.0, 4), 4);
        plan.props_mut().partitioning = Partitioning::Range(4);
        // The root is now partitioned too, so both the boundary rule and
        // the leak rule fire — PL304 either way.
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL304"));
    }

    #[test]
    fn pl305_exchange_keys_must_be_group_keys() {
        let input = partitioned_leaf(10_000.0, 4);
        let keys = vec![ColId::new(0, 1)];
        let mut xprops = input.props().clone();
        xprops.partitioning = Partitioning::Hash(keys.clone(), 4);
        xprops.edge_ranges = vec![ValidityRange::unbounded()];
        let exchange = PhysNode::Exchange {
            input: Box::new(input),
            keys,
            parts: 4,
            props: xprops,
        };
        let aprops = PlanProps {
            tables: TableSet::single(0),
            card: 20.0,
            cost: exchange.props().cost + 100.0,
            layout: vec![LayoutCol::Base(ColId::new(0, 0)), LayoutCol::Agg(0)],
            sorted_by: None,
            edge_ranges: vec![ValidityRange::unbounded()],
            partitioning: Partitioning::Hash(vec![ColId::new(0, 0)], 4),
        };
        // Aggregates on column 0 but the exchange hashed on column 1.
        let agg = PhysNode::HashAgg {
            input: Box::new(exchange),
            group_by: vec![ColId::new(0, 0)],
            aggs: vec![AggFunc::Count],
            props: aprops,
        };
        let plan = gather(agg, 4);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL305"));
    }

    /// A placement-legal partitioned check: LC above a TEMP, everything
    /// marked `Range(4)`.
    fn region_check(fold: bool) -> PhysNode {
        let mut t = temp(partitioned_leaf(100.0, 4));
        t.props_mut().partitioning = Partitioning::Range(4);
        let mut checked = check(
            t,
            pop_plan::CheckFlavor::Lc,
            pop_plan::CheckContext::AboveTemp,
        );
        checked.props_mut().partitioning = Partitioning::Range(4);
        if let PhysNode::Check { spec, .. } = &mut checked {
            spec.fold = fold;
        }
        checked
    }

    #[test]
    fn pl306_partitioned_check_without_fold() {
        let plan = gather(region_check(false), 4);
        let diags = lint_plan(&plan, &LintContext::bare());
        assert_eq!(codes(&diags), vec!["PL306"], "{diags:?}");
    }

    #[test]
    fn pl306_fold_check_outside_region() {
        let mut checked = check(
            leaf(0, "t", 2, 100.0),
            pop_plan::CheckFlavor::Lc,
            pop_plan::CheckContext::AboveTemp,
        );
        if let PhysNode::Check { spec, .. } = &mut checked {
            spec.fold = true;
        }
        let plan = temp(checked);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL306"));
    }

    #[test]
    fn pl306_folded_partitioned_check_is_clean() {
        let plan = gather(region_check(true), 4);
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn morsel_region_is_clean() {
        // A morsel-marked region is as well-formed as a range-marked one:
        // the rules key on `parts()`/`is_partitioned()`, not the variant.
        let mut n = leaf(0, "t", 2, 100.0);
        n.props_mut().partitioning = Partitioning::Morsel(4);
        let plan = gather(n, 4);
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pl304_morsel_partition_count_mismatch() {
        let mut n = leaf(0, "t", 2, 100.0);
        n.props_mut().partitioning = Partitioning::Morsel(2);
        let plan = gather(n, 4);
        assert!(codes(&lint_plan(&plan, &LintContext::bare())).contains(&"PL304"));
    }
}
