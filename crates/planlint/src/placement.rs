//! Pass 3: CHECK-placement rules (`PL201`–`PL208`, plus `PL104`).
//!
//! Structural encoding of Table 1 of the paper:
//!
//! * **LC** is lazy — it may only sit where its input is already
//!   materialized: directly above SORT/TEMP (or an MV scan), or on the
//!   build edge of a hash join (the build is an internal
//!   materialization).
//! * **LCEM** is the CHECK of a CHECK-above-TEMP pair: its input, looking
//!   through other checks, must be a TEMP.
//! * **ECB** buffers, so it must be the BUFCHECK operator (and only ECB
//!   may be).
//! * **ECWC** forgoes compensation, which is only sound when an ancestor
//!   blocks output: a materialization point or a hash-join build edge.
//! * **ECDC** may sit anywhere in a pipelined region, but only if a
//!   RIDSINK ancestor records returned rows for later compensation —
//!   and, when the caller supplies a cleanup registry, only if the rid
//!   side table it feeds has its cleanup registered (`PL208`), so a
//!   suspended query can never leak side-table state.
//!
//! Each flavor also carries the [`CheckContext`] it was placed under;
//! a flavor/context disagreement (`PL205`) means the placement pass and
//! the opportunity analysis would report different things.

use crate::dataflow::{NodeCx, Pass};
use crate::{through_checks, DiagCode, Frame, LintContext, Sink};
use pop_plan::{CheckContext, CheckFlavor, CheckSpec, PhysNode};
use std::collections::HashMap;

pub(crate) struct PlacementPass {
    /// Does the plan contain any checkpoints? (Computed lazily at the
    /// root, which the driver visits first; gates `PL104`.)
    has_checks: Option<bool>,
}

impl PlacementPass {
    pub(crate) fn new() -> Self {
        PlacementPass { has_checks: None }
    }
}

impl Pass for PlacementPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, ctx: &LintContext<'_>, sink: &mut Sink) {
        match cx.node {
            PhysNode::Check { input, spec, .. } => {
                check_flavor(cx, input, spec, false, ctx, sink);
            }
            PhysNode::BufCheck { input, spec, .. } => {
                check_flavor(cx, input, spec, true, ctx, sink);
            }
            _ => {}
        }
        // `PL104`: when POP placed checkpoints and the caller expects
        // coverage, every materialization point should be guarded by a
        // checkpoint directly above it (the LC rule of Table 1 —
        // materializations are free check opportunities).
        if ctx.options.expect_check_coverage
            && cx.node.is_materialization_point()
            && !matches!(
                cx.frames.last().map(|f| f.node),
                Some(PhysNode::Check { .. } | PhysNode::BufCheck { .. })
            )
        {
            let has_checks = *self
                .has_checks
                .get_or_insert_with(|| !crate::dataflow::root_of(cx).checks().is_empty());
            if has_checks {
                sink.emit(
                    DiagCode::Pl104,
                    cx.node,
                    cx.path,
                    format!(
                        "{} materialization point has no checkpoint above it",
                        cx.node.name()
                    ),
                );
            }
        }
    }

    fn finish(&mut self, plan: &PhysNode, _ctx: &LintContext<'_>, sink: &mut Sink) {
        check_unique_ids(plan, sink);
    }
}

fn check_flavor(
    cx: &NodeCx<'_, '_>,
    input: &PhysNode,
    spec: &CheckSpec,
    buffered: bool,
    ctx: &LintContext<'_>,
    sink: &mut Sink,
) {
    let (node, frames, path) = (cx.node, cx.frames, cx.path);
    if buffered != (spec.flavor == CheckFlavor::Ecb) {
        sink.emit(
            DiagCode::Pl205,
            node,
            path,
            format!(
                "{} checkpoint #{} on a {} operator (ECB and only ECB buffers)",
                spec.flavor,
                spec.id,
                node.name()
            ),
        );
        return;
    }
    let context_ok = matches!(
        (spec.flavor, spec.context),
        (
            CheckFlavor::Lc,
            CheckContext::AboveSort
                | CheckContext::AboveTemp
                | CheckContext::HashBuild
                | CheckContext::AggBuild
        ) | (
            CheckFlavor::Lcem | CheckFlavor::Ecb,
            CheckContext::NljnOuter
        ) | (CheckFlavor::Ecwc, CheckContext::BelowMaterialization)
            | (CheckFlavor::Ecdc, CheckContext::Pipeline)
    );
    if !context_ok {
        sink.emit(
            DiagCode::Pl205,
            node,
            path,
            format!(
                "{} checkpoint #{} recorded under context '{}'",
                spec.flavor, spec.id, spec.context
            ),
        );
    }
    match spec.flavor {
        CheckFlavor::Lc => {
            // The abstract domain already folds "materialization point or
            // MV scan, looking through check wrappers" into the input's
            // `materialized` bit.
            let guarded = cx.children[0].materialized || on_build_edge(frames);
            if !guarded {
                sink.emit(
                    DiagCode::Pl201,
                    node,
                    path,
                    format!(
                        "LC checkpoint #{} guards unmaterialized input {}",
                        spec.id,
                        through_checks(input).name()
                    ),
                );
            }
        }
        CheckFlavor::Lcem => {
            if !matches!(through_checks(input), PhysNode::Temp { .. }) {
                sink.emit(
                    DiagCode::Pl202,
                    node,
                    path,
                    format!(
                        "LCEM checkpoint #{} is not above a TEMP (input is {})",
                        spec.id,
                        through_checks(input).name()
                    ),
                );
            }
        }
        CheckFlavor::Ecb => {
            if let PhysNode::BufCheck { buffer, .. } = node {
                // The first violating row count is floor(hi)+1; the buffer
                // must hold that many rows to observe the crossing.
                let needed = spec.range.hi.floor() + 1.0;
                if spec.range.hi.is_finite() && (*buffer as f64) < needed {
                    sink.emit(
                        DiagCode::Pl207,
                        node,
                        path,
                        format!(
                            "BUFCHECK #{} buffer {} cannot hold {needed:.0} rows (range bound {:.1})",
                            spec.id, buffer, spec.range.hi
                        ),
                    );
                }
            }
        }
        CheckFlavor::Ecwc => {
            let blocked = frames.iter().any(|f| {
                f.node.is_materialization_point()
                    || (matches!(f.node, PhysNode::Hsjn { .. }) && f.child_idx == 0)
            });
            if !blocked {
                sink.emit(
                    DiagCode::Pl204,
                    node,
                    path,
                    format!(
                        "ECWC checkpoint #{} has no materializing ancestor to block output",
                        spec.id
                    ),
                );
            }
        }
        CheckFlavor::Ecdc => {
            if !frames
                .iter()
                .any(|f| matches!(f.node, PhysNode::RidSink { .. }))
            {
                sink.emit(
                    DiagCode::Pl203,
                    node,
                    path,
                    format!(
                        "ECDC checkpoint #{} has no rid side-table sink above it",
                        spec.id
                    ),
                );
            }
            // PL208: deferred compensation accumulates rid side-table
            // state; when the caller supplies the per-query cleanup
            // registry, the side table (keyed by the check's subplan
            // signature) must have its cleanup registered.
            if let Some(reg) = ctx.cleanups {
                if !reg.covers_side_table(&spec.signature) {
                    sink.emit(
                        DiagCode::Pl208,
                        node,
                        path,
                        format!(
                            "ECDC checkpoint #{} side table {:?} has no registered cleanup",
                            spec.id, spec.signature
                        ),
                    );
                }
            }
        }
    }
}

/// Is the current node (whose ancestor stack is `frames`) on a *build*
/// edge — the build side of a hash join or the input of a hash aggregate
/// — looking through any checkpoint wrappers between? Both consume the
/// edge into a materialized hash table, so a lazy check there resolves
/// when the build completes.
fn on_build_edge(frames: &[Frame<'_>]) -> bool {
    for f in frames.iter().rev() {
        match f.node {
            // Checkpoint and partition-parallel wrappers are transparent:
            // the rows crossing them are the same rows the build consumes.
            PhysNode::Check { .. }
            | PhysNode::BufCheck { .. }
            | PhysNode::Exchange { .. }
            | PhysNode::Gather { .. } => {}
            PhysNode::Hsjn { .. } => return f.child_idx == 0,
            PhysNode::HashAgg { .. } => return true,
            _ => return false,
        }
    }
    false
}

/// `PL206`: checkpoint ids must be unique within a plan — the executor
/// keys observed cardinalities and re-optimization events by id.
fn check_unique_ids(plan: &PhysNode, sink: &mut Sink) {
    let mut seen: HashMap<usize, usize> = HashMap::new();
    for spec in plan.checks() {
        *seen.entry(spec.id).or_insert(0) += 1;
    }
    let mut dups: Vec<(usize, usize)> = seen.into_iter().filter(|(_, n)| *n > 1).collect();
    dups.sort_unstable();
    for (id, n) in dups {
        sink.emit(
            DiagCode::Pl206,
            plan,
            &[],
            format!("checkpoint id {id} appears {n} times"),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::*;
    use crate::{lint_plan, LintContext};
    use pop_plan::{CheckContext, CheckFlavor, PhysNode, ValidityRange};

    fn diags_of(plan: &PhysNode) -> Vec<&'static str> {
        codes(&lint_plan(plan, &LintContext::bare()))
    }

    #[test]
    fn pl201_lc_over_pipelined_scan() {
        // LC directly above a table scan: nothing is materialized there.
        let plan = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        assert!(diags_of(&plan).contains(&"PL201"), "{:?}", diags_of(&plan));
    }

    #[test]
    fn lc_above_temp_and_on_build_edge_are_legal() {
        let guarded = check(
            temp(leaf(0, "a", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        assert!(diags_of(&guarded).is_empty(), "{:?}", diags_of(&guarded));
        // LC on the hash build edge guards an unmaterialized input legally.
        let build = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Lc,
            CheckContext::HashBuild,
        );
        let plan = hsjn(build, leaf(1, "b", 2, 1000.0), 500.0);
        assert!(diags_of(&plan).is_empty(), "{:?}", diags_of(&plan));
    }

    #[test]
    fn pl202_lcem_without_temp() {
        let plan = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Lcem,
            CheckContext::NljnOuter,
        );
        assert!(diags_of(&plan).contains(&"PL202"));
    }

    #[test]
    fn pl203_ecdc_without_ridsink() {
        let plan = check(
            hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0),
            CheckFlavor::Ecdc,
            CheckContext::Pipeline,
        );
        assert!(diags_of(&plan).contains(&"PL203"));
    }

    #[test]
    fn ecdc_under_ridsink_is_legal() {
        let checked = check(
            hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0),
            CheckFlavor::Ecdc,
            CheckContext::Pipeline,
        );
        let props = checked.props().clone();
        let plan = PhysNode::RidSink {
            input: Box::new(checked),
            props,
        };
        assert!(diags_of(&plan).is_empty(), "{:?}", diags_of(&plan));
    }

    #[test]
    fn pl208_ecdc_side_table_without_cleanup() {
        let checked = check(
            hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 500.0),
            CheckFlavor::Ecdc,
            CheckContext::Pipeline,
        );
        let props = checked.props().clone();
        let plan = PhysNode::RidSink {
            input: Box::new(checked),
            props,
        };
        // An empty registry covers nothing: PL208 (the testutil check
        // signature is "sig").
        let empty = pop_guard::CleanupRegistry::new();
        let ctx = LintContext::bare().with_cleanups(&empty);
        let diags = lint_plan(&plan, &ctx);
        assert!(codes(&diags).contains(&"PL208"), "{diags:?}");
        // Registering the side table silences the rule.
        let mut reg = pop_guard::CleanupRegistry::new();
        reg.register_side_table("sig");
        let ctx = LintContext::bare().with_cleanups(&reg);
        assert!(lint_plan(&plan, &ctx).is_empty());
        // And without a registry the rule does not apply at all.
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }

    #[test]
    fn pl204_ecwc_without_blocking_ancestor() {
        let plan = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Ecwc,
            CheckContext::BelowMaterialization,
        );
        assert!(diags_of(&plan).contains(&"PL204"));
    }

    #[test]
    fn ecwc_below_sort_is_legal() {
        let checked = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Ecwc,
            CheckContext::BelowMaterialization,
        );
        let plan = temp(checked);
        assert!(diags_of(&plan).is_empty(), "{:?}", diags_of(&plan));
    }

    #[test]
    fn pl205_ecb_on_plain_check() {
        let plan = check(
            leaf(0, "a", 2, 100.0),
            CheckFlavor::Ecb,
            CheckContext::NljnOuter,
        );
        assert!(diags_of(&plan).contains(&"PL205"));
    }

    #[test]
    fn pl205_flavor_context_mismatch() {
        // LC recorded under the pipeline context.
        let plan = check(
            temp(leaf(0, "a", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::Pipeline,
        );
        assert!(diags_of(&plan).contains(&"PL205"));
    }

    #[test]
    fn pl206_duplicate_check_ids() {
        // Two checks both with id 0 (the testutil default).
        let inner = check(
            temp(leaf(0, "a", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        let plan = check(temp(inner), CheckFlavor::Lc, CheckContext::AboveTemp);
        assert!(diags_of(&plan).contains(&"PL206"));
    }

    #[test]
    fn pl207_bufcheck_buffer_too_small() {
        let input = leaf(0, "a", 2, 100.0);
        let range = ValidityRange::new(0.0, 500.0);
        let mut props = input.props().clone();
        props.edge_ranges = vec![range];
        let plan = PhysNode::BufCheck {
            spec: pop_plan::CheckSpec {
                id: 0,
                flavor: CheckFlavor::Ecb,
                range,
                est_card: 100.0,
                signature: "sig".into(),
                context: CheckContext::NljnOuter,
                fold: false,
            },
            input: Box::new(input),
            buffer: 10, // needs 501
            props,
        };
        assert!(diags_of(&plan).contains(&"PL207"));
    }

    #[test]
    fn pl104_unguarded_materialization() {
        // Plan HAS a checkpoint, but a second TEMP is unguarded.
        let guarded = check(
            temp(leaf(0, "a", 2, 100.0)),
            CheckFlavor::Lc,
            CheckContext::AboveTemp,
        );
        let plan = temp(guarded); // outer TEMP has no check above it
        let ctx = LintContext::bare().expect_check_coverage(true);
        let diags = lint_plan(&plan, &ctx);
        assert!(codes(&diags).contains(&"PL104"), "{diags:?}");
        // Without the option, silence.
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }
}
