//! Pass 2: validity-range consistency (`PL101`–`PL103`).
//!
//! The sensitivity analysis of §2.2 guarantees that every validity range
//! brackets the optimizer's own estimate at that edge — the modified
//! Newton-Raphson search starts from the estimation point and walks
//! outward, and intersections only combine ranges around the *same*
//! estimate. A range that excludes its estimate (or is outright empty)
//! means a CHECK would fire unconditionally on a plan the optimizer just
//! chose: a contradiction worth rejecting before execution.
//!
//! `PL104` (unguarded materialization points) lives in the placement pass
//! where the ancestor context is available.

use crate::dataflow::{NodeCx, Pass};
use crate::{DiagCode, LintContext, Sink};
use pop_plan::{PhysNode, ValidityRange};

pub(crate) struct ValidityPass;

impl Pass for ValidityPass {
    fn check(&mut self, cx: &NodeCx<'_, '_>, _ctx: &LintContext<'_>, sink: &mut Sink) {
        check_node(cx.node, cx.path, sink);
    }
}

fn check_node(node: &PhysNode, path: &[usize], sink: &mut Sink) {
    // Edge ranges, aligned with children. Alignment is only guaranteed
    // when the counts match (wrappers cloned from a child's props may
    // carry stale extra entries); the contains-check is skipped otherwise.
    let children = node.children();
    let props = node.props();
    let aligned = props.edge_ranges.len() == children.len();
    for (i, r) in props.edge_ranges.iter().enumerate() {
        check_range_shape(node, r, &format!("edge {i} range"), path, sink);
        if aligned && range_well_formed(r) {
            let child_card = children[i].props().card;
            if child_card.is_finite() && !r.contains(child_card) {
                sink.emit(
                    DiagCode::Pl102,
                    node,
                    path,
                    format!("edge {i} estimate {child_card:.0} outside validity range {r}"),
                );
            }
        }
    }
    if let PhysNode::Check { spec, .. } | PhysNode::BufCheck { spec, .. } = node {
        check_range_shape(
            node,
            &spec.range,
            &format!("CHECK #{} range", spec.id),
            path,
            sink,
        );
        if range_well_formed(&spec.range)
            && spec.est_card.is_finite()
            && !spec.range.contains(spec.est_card)
        {
            sink.emit(
                DiagCode::Pl102,
                node,
                path,
                format!(
                    "CHECK #{} estimate {:.0} outside its range {} (would fire unconditionally)",
                    spec.id, spec.est_card, spec.range
                ),
            );
        }
    }
}

fn range_well_formed(r: &ValidityRange) -> bool {
    !r.lo.is_nan() && !r.hi.is_nan() && r.lo >= 0.0 && r.lo <= r.hi
}

fn check_range_shape(
    node: &PhysNode,
    r: &ValidityRange,
    what: &str,
    path: &[usize],
    sink: &mut Sink,
) {
    if r.lo.is_nan() || r.hi.is_nan() || r.lo < 0.0 {
        sink.emit(
            DiagCode::Pl103,
            node,
            path,
            format!("{what} has a malformed bound: lo={}, hi={}", r.lo, r.hi),
        );
    } else if r.lo > r.hi {
        sink.emit(
            DiagCode::Pl101,
            node,
            path,
            format!("{what} {r} is empty (lo > hi)"),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::*;
    use crate::{lint_plan, LintContext};
    use pop_plan::{CheckContext, CheckFlavor, PhysNode, ValidityRange};

    fn lcem_pair(range: ValidityRange) -> PhysNode {
        // Well-placed LCEM (CHECK above TEMP) so only range findings fire.
        let t = temp(leaf(0, "a", 2, 100.0));
        check_with_range(t, CheckFlavor::Lcem, CheckContext::NljnOuter, range)
    }

    #[test]
    fn pl101_inverted_range() {
        let plan = lcem_pair(ValidityRange::new(500.0, 20.0));
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL101"), "{diags:?}");
    }

    #[test]
    fn pl102_estimate_outside_range() {
        // est_card is 100 (the TEMP's card); range excludes it.
        let plan = lcem_pair(ValidityRange::new(500.0, 900.0));
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL102"), "{diags:?}");
    }

    #[test]
    fn pl103_nan_bound() {
        let plan = lcem_pair(ValidityRange::new(f64::NAN, 100.0));
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL103"), "{diags:?}");
    }

    #[test]
    fn pl103_negative_bound() {
        let plan = lcem_pair(ValidityRange::new(-5.0, 100.0));
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL103"), "{diags:?}");
    }

    #[test]
    fn pl102_edge_range_excludes_child_estimate() {
        let mut plan = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 50.0);
        plan.props_mut().edge_ranges[0] = ValidityRange::new(0.0, 10.0); // build est is 100
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(codes(&diags).contains(&"PL102"), "{diags:?}");
    }

    #[test]
    fn misaligned_edge_ranges_are_tolerated() {
        // A wrapper that cloned a join's props carries two ranges but has
        // one child; the contains-check must not misfire.
        let join = hsjn(leaf(0, "a", 2, 100.0), leaf(1, "b", 2, 1000.0), 50.0);
        let mut props = join.props().clone();
        props.edge_ranges = vec![ValidityRange::new(0.0, 10.0), ValidityRange::unbounded()];
        let plan = PhysNode::AntiJoinRids {
            input: Box::new(join),
            props,
        };
        let diags = lint_plan(&plan, &LintContext::bare());
        assert!(
            !codes(&diags).contains(&"PL102"),
            "misaligned ranges must be skipped: {diags:?}"
        );
    }

    #[test]
    fn bracketing_range_is_clean() {
        let plan = lcem_pair(ValidityRange::new(20.0, 500.0));
        assert!(lint_plan(&plan, &LintContext::bare()).is_empty());
    }
}
