//! Equi-depth histograms over numeric columns.

/// An equi-depth (equi-height) histogram: every bucket holds roughly the
/// same number of values, so bucket boundaries adapt to skew.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries: `bounds[i]..=bounds[i+1]` is bucket `i`.
    bounds: Vec<f64>,
    /// Rows per bucket (equal up to rounding).
    depth: Vec<u64>,
    /// Total rows covered.
    total: u64,
}

impl EquiDepthHistogram {
    /// Build from an unsorted sample of non-null numeric values.
    ///
    /// Returns `None` if the sample is empty.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let b = buckets.min(n);
        let mut bounds = Vec::with_capacity(b + 1);
        let mut depth = Vec::with_capacity(b);
        bounds.push(values[0]);
        let mut start = 0usize;
        for i in 0..b {
            // Rounded-even split of n into b buckets.
            let end = ((i + 1) * n) / b;
            let end = end.max(start + 1).min(n);
            bounds.push(values[end - 1]);
            depth.push((end - start) as u64);
            start = end;
        }
        Some(EquiDepthHistogram {
            bounds,
            depth,
            total: n as u64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.depth.len()
    }

    /// Total rows summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Minimum value seen.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        *self.bounds.last().unwrap()
    }

    /// Estimated fraction of values `<= v` (in `[0, 1]`).
    pub fn frac_le(&self, v: f64) -> f64 {
        if v < self.min() {
            return 0.0;
        }
        if v >= self.max() {
            return 1.0;
        }
        let mut cum = 0u64;
        for i in 0..self.depth.len() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if v < hi {
                // Linear interpolation within the bucket.
                let width = hi - lo;
                let frac_in = if width <= 0.0 {
                    1.0
                } else {
                    ((v - lo) / width).clamp(0.0, 1.0)
                };
                return (cum as f64 + frac_in * self.depth[i] as f64) / self.total as f64;
            }
            cum += self.depth[i];
        }
        1.0
    }

    /// Estimated fraction of values in `[lo, hi]` (inclusive, either bound
    /// optional).
    pub fn frac_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let hi_frac = hi.map_or(1.0, |h| self.frac_le(h));
        let lo_frac = match lo {
            None => 0.0,
            // Exclusive of values strictly below lo: approximate with
            // frac_le just under lo.
            Some(l) => {
                if l <= self.min() {
                    0.0
                } else {
                    self.frac_le(l)
                }
            }
        };
        (hi_frac - lo_frac).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_values() {
        let vals: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = EquiDepthHistogram::build(vals, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        assert_eq!(h.total(), 100);
        assert!((h.frac_le(50.0) - 0.5).abs() < 0.06);
        assert_eq!(h.frac_le(0.0), 0.0);
        assert_eq!(h.frac_le(100.0), 1.0);
        assert_eq!(h.frac_le(1000.0), 1.0);
    }

    #[test]
    fn skewed_values_adapt() {
        // 90 copies of 1, then 2..=11: equi-depth puts many buckets on 1.
        let mut vals = vec![1.0; 90];
        vals.extend((2..=11).map(f64::from));
        let h = EquiDepthHistogram::build(vals, 10).unwrap();
        assert!(h.frac_le(1.0) > 0.85);
        assert!((h.frac_range(Some(2.0), Some(11.0)) - 0.1).abs() < 0.12);
    }

    #[test]
    fn range_estimates() {
        let vals: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = EquiDepthHistogram::build(vals, 10).unwrap();
        let f = h.frac_range(Some(25.0), Some(75.0));
        assert!((f - 0.5).abs() < 0.1, "got {f}");
        assert!((h.frac_range(None, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_returns_none() {
        assert!(EquiDepthHistogram::build(vec![], 10).is_none());
        assert!(EquiDepthHistogram::build(vec![1.0], 0).is_none());
    }

    #[test]
    fn single_value() {
        let h = EquiDepthHistogram::build(vec![5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.frac_le(5.0), 1.0);
        assert_eq!(h.frac_le(4.9), 0.0);
    }

    #[test]
    fn more_buckets_than_values() {
        let h = EquiDepthHistogram::build(vec![1.0, 2.0], 10).unwrap();
        assert_eq!(h.buckets(), 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn monotone_frac_le() {
        let vals: Vec<f64> = (0..50).map(|i| f64::from((i * 37) % 100)).collect();
        let h = EquiDepthHistogram::build(vals, 8).unwrap();
        let mut prev = -1.0;
        for v in 0..110 {
            let f = h.frac_le(f64::from(v));
            assert!(f >= prev - 1e-12, "frac_le not monotone at {v}");
            prev = f;
        }
    }
}
