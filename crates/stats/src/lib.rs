//! Statistics and selectivity estimation.
//!
//! This crate implements the estimation machinery a System-R-style
//! optimizer uses to derive cardinalities (§1 of the paper): per-table row
//! counts, per-column distinct counts and equi-depth histograms, and
//! predicate selectivity estimation under the **independence assumption**.
//!
//! The independence assumption is deliberately preserved even though the
//! workloads (notably the DMV case study, §6) contain strong correlations:
//! multiplying per-column selectivities of correlated predicates produces
//! the orders-of-magnitude cardinality *underestimates* that POP detects
//! and recovers from. Parameter markers fall back to fixed default
//! selectivities, reproducing the Q10 experiment of §5.1.

mod histogram;
mod registry;
mod sampling;
mod selectivity;
mod table_stats;

pub use histogram::EquiDepthHistogram;
pub use registry::StatsRegistry;
pub use sampling::{sample_stride, scale_observation};
pub use selectivity::{estimate_selectivity, join_selectivity, SelectivityDefaults};
pub use table_stats::{analyze_table, ColumnStats, TableStats};
