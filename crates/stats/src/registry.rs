//! A registry of analyzed table statistics.

use crate::{analyze_table, TableStats};
use parking_lot::RwLock;
use pop_storage::Catalog;
use pop_types::{PopError, PopResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Caches `TableStats` per table name; the optimizer reads estimates from
/// here. Temp MVs get *exact* derived stats registered by the POP driver.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<TableStats>>>>,
}

impl std::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("tables", &self.inner.read().len())
            .finish_non_exhaustive()
    }
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Analyze one table and cache its stats.
    pub fn analyze(&self, catalog: &Catalog, table: &str) -> PopResult<Arc<TableStats>> {
        let t = catalog.table(table)?;
        let stats = Arc::new(analyze_table(&t));
        self.inner.write().insert(table.to_string(), stats.clone());
        Ok(stats)
    }

    /// Analyze every table in the catalog.
    pub fn analyze_all(&self, catalog: &Catalog) -> PopResult<()> {
        for name in catalog.table_names() {
            self.analyze(catalog, &name)?;
        }
        Ok(())
    }

    /// Insert explicit stats (used for temp MVs with exact cardinalities).
    pub fn put(&self, table: impl Into<String>, stats: TableStats) {
        self.inner.write().insert(table.into(), Arc::new(stats));
    }

    /// Fetch stats for a table.
    pub fn get(&self, table: &str) -> PopResult<Arc<TableStats>> {
        self.inner
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| PopError::Planning(format!("no statistics for table {table}")))
    }

    /// Remove stats for a table (temp MV cleanup).
    pub fn remove(&self, table: &str) {
        self.inner.write().remove(table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{DataType, Schema, Value};

    #[test]
    fn analyze_and_get() {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            Schema::from_pairs(&[("a", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let reg = StatsRegistry::new();
        reg.analyze_all(&cat).unwrap();
        assert_eq!(reg.get("t").unwrap().row_count, 2);
        assert!(reg.get("missing").is_err());
    }

    #[test]
    fn put_and_remove() {
        let reg = StatsRegistry::new();
        reg.put("mv", TableStats::derived(42, 3));
        assert_eq!(reg.get("mv").unwrap().row_count, 42);
        reg.remove("mv");
        assert!(reg.get("mv").is_err());
    }
}
