//! Deterministic sampling support for the driver's pre-execution plan
//! vetting (Wu/Naughton-style sampling-based re-optimization).
//!
//! The sample is a **systematic** one: every `stride`-th row of the
//! driving table, starting at row 0. Systematic sampling is deterministic
//! (the same table yields the same sample in every run, on every thread
//! count), needs no stored random state, and for the synthetic workloads
//! here — whose correlations are value-based, not position-based — is as
//! unbiased as a random sample while staying trivially cheap to fetch.

/// The sampling stride that visits about `target_rows` of a
/// `row_count`-row table: `ceil(row_count / target_rows)`, at least 1.
///
/// A stride of 1 means the "sample" is the whole table; callers should
/// treat that as "too small to be worth vetting" and run the plan
/// directly.
pub fn sample_stride(row_count: u64, target_rows: usize) -> u64 {
    let target = target_rows.max(1) as u64;
    row_count.div_ceil(target).max(1)
}

/// Scale a cardinality observed over a sampled run back to the full
/// table: multiply by `stride` once per occurrence of the sampled table
/// in the observed subplan (`occurrences` is 0 for subplans independent
/// of the driving table — their counts are exact, not scaled).
pub fn scale_observation(observed: u64, stride: u64, occurrences: u32) -> u64 {
    observed.saturating_mul(stride.saturating_pow(occurrences))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_targets_sample_size() {
        assert_eq!(sample_stride(100_000, 4096), 25);
        assert_eq!(sample_stride(4096, 4096), 1);
        assert_eq!(sample_stride(4097, 4096), 2);
        assert_eq!(sample_stride(0, 4096), 1);
        // Degenerate target never divides by zero.
        assert_eq!(sample_stride(10, 0), 10);
    }

    #[test]
    fn scaling_is_exact_for_independent_subplans() {
        assert_eq!(scale_observation(42, 25, 0), 42);
        assert_eq!(scale_observation(42, 25, 1), 1050);
        assert_eq!(scale_observation(42, 25, 2), 26_250);
        // Saturates instead of overflowing.
        assert_eq!(scale_observation(u64::MAX, 2, 1), u64::MAX);
    }
}
