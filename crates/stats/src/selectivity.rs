//! Predicate selectivity estimation under the independence assumption.

use crate::TableStats;
use pop_expr::{CmpOp, Expr, Params};
use pop_types::Value;

/// Default selectivities used when a predicate cannot be estimated from
/// statistics — most importantly for **parameter markers**, whose values
/// are unknown at optimization time (§5.1 of the paper). The constants
/// mirror the classic System-R/DB2 defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityDefaults {
    /// `col = ?` with unknown comparand.
    pub eq: f64,
    /// `col < ?`, `col >= ?`, ... (open range).
    pub range: f64,
    /// `col BETWEEN ? AND ?` (closed range).
    pub between: f64,
    /// `col LIKE pattern`.
    pub like: f64,
    /// Anything else.
    pub other: f64,
}

impl Default for SelectivityDefaults {
    fn default() -> Self {
        SelectivityDefaults {
            eq: 0.04,
            range: 1.0 / 3.0,
            between: 0.10,
            like: 0.10,
            other: 0.25,
        }
    }
}

fn clamp01(s: f64) -> f64 {
    if s.is_nan() {
        return 0.0;
    }
    s.clamp(0.0, 1.0)
}

/// Resolve the comparand of a predicate: a literal is always known; a
/// parameter marker is known only when `params` carries its binding.
fn comparand<'a>(e: &'a Expr, params: Option<&'a Params>) -> Option<&'a Value> {
    match e {
        Expr::Lit(v) => Some(v),
        Expr::Param(i) => params.and_then(|p| p.get(*i).ok()),
        _ => None,
    }
}

/// Estimate the selectivity of `expr` against a single table's stats.
///
/// `params == None` models optimization-time estimation where parameter
/// markers are unknown (default selectivities); `params == Some(..)` models
/// the "correct estimate" reference the paper uses as its baseline curve in
/// Figure 11.
///
/// Conjunctions multiply factor selectivities — the independence
/// assumption, the dominant estimation-error source in the DMV case study
/// (§6).
pub fn estimate_selectivity(
    expr: &Expr,
    stats: &TableStats,
    defaults: &SelectivityDefaults,
    params: Option<&Params>,
) -> f64 {
    clamp01(estimate(expr, stats, defaults, params))
}

fn estimate(
    expr: &Expr,
    stats: &TableStats,
    defaults: &SelectivityDefaults,
    params: Option<&Params>,
) -> f64 {
    match expr {
        Expr::And(parts) => parts
            .iter()
            .map(|p| estimate(p, stats, defaults, params))
            .product(),
        Expr::Or(parts) => {
            // Independent union: 1 - prod(1 - s_i).
            let inv: f64 = parts
                .iter()
                .map(|p| 1.0 - clamp01(estimate(p, stats, defaults, params)))
                .product();
            1.0 - inv
        }
        Expr::Not(e) => 1.0 - clamp01(estimate(e, stats, defaults, params)),
        Expr::Cmp(op, a, b) => estimate_cmp(*op, a, b, stats, defaults, params),
        Expr::Like(e, pattern) => {
            // A leading literal prefix narrows the match; otherwise default.
            let _ = e;
            let prefix_len = pattern
                .chars()
                .take_while(|c| *c != '%' && *c != '_')
                .count();
            match prefix_len {
                0 => defaults.like,
                1 => defaults.like * 0.8,
                _ => defaults.like * 0.5f64.powi((prefix_len as i32 - 1).min(6)),
            }
        }
        Expr::InList(e, values) => {
            if let Expr::Col(c) = e.as_ref() {
                let d = stats.distinct(c.col);
                clamp01(values.len() as f64 / d)
            } else {
                clamp01(values.len() as f64 * defaults.eq)
            }
        }
        Expr::Between(e, lo, hi) => {
            if let Expr::Col(c) = e.as_ref() {
                let cs = stats.col(c.col);
                let lo_v = comparand(lo, params).and_then(pop_types::Value::as_f64);
                let hi_v = comparand(hi, params).and_then(pop_types::Value::as_f64);
                if let (Some(h), Some(lo_f), Some(hi_f)) = (&cs.histogram, lo_v, hi_v) {
                    return h.frac_range(Some(lo_f), Some(hi_f)) * (1.0 - cs.null_frac());
                }
            }
            defaults.between
        }
        Expr::IsNull(e) => {
            if let Expr::Col(c) = e.as_ref() {
                stats.col(c.col).null_frac()
            } else {
                defaults.other
            }
        }
        // A bare boolean column or other scalar used as predicate.
        _ => defaults.other,
    }
}

fn estimate_cmp(
    op: CmpOp,
    a: &Expr,
    b: &Expr,
    stats: &TableStats,
    defaults: &SelectivityDefaults,
    params: Option<&Params>,
) -> f64 {
    // Normalize to (col OP comparand).
    let (col, op, other) = match (a, b) {
        (Expr::Col(c), _) => (Some(c), op, b),
        (_, Expr::Col(c)) => (Some(c), op.flip(), a),
        _ => (None, op, b),
    };
    let Some(col) = col else {
        return defaults.other;
    };
    let cs = stats.col(col.col);
    let not_null = 1.0 - cs.null_frac();
    let known = comparand(other, params);

    match op {
        CmpOp::Eq => match known {
            Some(_) => not_null / stats.distinct(col.col),
            None => defaults.eq,
        },
        CmpOp::Ne => match known {
            Some(_) => not_null * (1.0 - 1.0 / stats.distinct(col.col)),
            None => 1.0 - defaults.eq,
        },
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let v = known.and_then(pop_types::Value::as_f64);
            match (v, &cs.histogram) {
                (Some(v), Some(h)) => {
                    let le = h.frac_le(v);
                    let frac = match op {
                        CmpOp::Le => le,
                        // Approximate strict vs non-strict by the equality mass.
                        CmpOp::Lt => (le - not_null / stats.distinct(col.col)).max(0.0),
                        CmpOp::Ge => 1.0 - (le - not_null / stats.distinct(col.col)).max(0.0),
                        CmpOp::Gt => 1.0 - le,
                        _ => unreachable!(),
                    };
                    frac * not_null
                }
                (Some(v), None) => {
                    // Interpolate on min/max when no histogram exists.
                    match (cs.min, cs.max) {
                        (Some(mn), Some(mx)) if mx > mn => {
                            let le = ((v - mn) / (mx - mn)).clamp(0.0, 1.0);
                            let frac = match op {
                                CmpOp::Le | CmpOp::Lt => le,
                                CmpOp::Ge | CmpOp::Gt => 1.0 - le,
                                _ => unreachable!(),
                            };
                            frac * not_null
                        }
                        _ => defaults.range,
                    }
                }
                (None, _) => defaults.range,
            }
        }
    }
}

/// Equi-join selectivity between two columns with distinct counts `d1` and
/// `d2`: the classic `1 / max(d1, d2)`.
pub fn join_selectivity(d1: f64, d2: f64) -> f64 {
    1.0 / d1.max(d2).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_storage::Table;
    use pop_types::{DataType, Schema};

    fn stats() -> TableStats {
        // 1000 rows; col0 uniform 0..99 (distinct 100); col1 uniform 0..9;
        // col2 strings with 4 distinct values.
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
        ]);
        let rows = (0..1000)
            .map(|i| {
                vec![
                    Value::Int(i % 100),
                    Value::Int(i % 10),
                    Value::str(format!("v{}", i % 4)),
                ]
            })
            .collect();
        crate::analyze_table(&Table::new(0, "t", schema, rows))
    }

    fn d() -> SelectivityDefaults {
        SelectivityDefaults::default()
    }

    #[test]
    fn eq_uses_distinct() {
        let st = stats();
        let s = estimate_selectivity(&Expr::col(0, 0).eq(Expr::lit(5i64)), &st, &d(), None);
        assert!((s - 0.01).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn eq_param_unknown_uses_default() {
        let st = stats();
        let s = estimate_selectivity(&Expr::col(0, 0).eq(Expr::Param(0)), &st, &d(), None);
        assert_eq!(s, d().eq);
    }

    #[test]
    fn eq_param_bound_uses_stats() {
        let st = stats();
        let p = Params::new(vec![Value::Int(5)]);
        let s = estimate_selectivity(&Expr::col(0, 0).eq(Expr::Param(0)), &st, &d(), Some(&p));
        assert!((s - 0.01).abs() < 1e-9);
    }

    #[test]
    fn range_via_histogram() {
        let st = stats();
        let s = estimate_selectivity(&Expr::col(0, 0).le(Expr::lit(49i64)), &st, &d(), None);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
        let s = estimate_selectivity(&Expr::col(0, 0).gt(Expr::lit(49i64)), &st, &d(), None);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
    }

    #[test]
    fn range_param_unknown_uses_default() {
        let st = stats();
        let s = estimate_selectivity(&Expr::col(0, 0).le(Expr::Param(0)), &st, &d(), None);
        assert_eq!(s, d().range);
    }

    #[test]
    fn flipped_comparison() {
        let st = stats();
        // 49 >= col  ==  col <= 49
        let s = estimate_selectivity(&Expr::lit(49i64).ge(Expr::col(0, 0)), &st, &d(), None);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
    }

    #[test]
    fn and_multiplies_independence() {
        let st = stats();
        let e = Expr::col(0, 0)
            .eq(Expr::lit(5i64))
            .and(Expr::col(0, 1).eq(Expr::lit(3i64)));
        let s = estimate_selectivity(&e, &st, &d(), None);
        assert!((s - 0.001).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn or_union() {
        let st = stats();
        let e = Expr::col(0, 1)
            .eq(Expr::lit(3i64))
            .or(Expr::col(0, 1).eq(Expr::lit(4i64)));
        let s = estimate_selectivity(&e, &st, &d(), None);
        assert!((s - 0.19).abs() < 0.01, "got {s}");
    }

    #[test]
    fn not_complements() {
        let st = stats();
        let e = Expr::col(0, 0).eq(Expr::lit(5i64)).not();
        let s = estimate_selectivity(&e, &st, &d(), None);
        assert!((s - 0.99).abs() < 1e-9);
    }

    #[test]
    fn in_list_uses_distinct() {
        let st = stats();
        let e = Expr::col(0, 2).in_list(vec![Value::str("v0"), Value::str("v1")]);
        let s = estimate_selectivity(&e, &st, &d(), None);
        assert!((s - 0.5).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn between_via_histogram() {
        let st = stats();
        let e = Expr::col(0, 0).between(Expr::lit(10i64), Expr::lit(29i64));
        let s = estimate_selectivity(&e, &st, &d(), None);
        assert!((s - 0.2).abs() < 0.07, "got {s}");
    }

    #[test]
    fn like_prefix_narrows() {
        let st = stats();
        let s0 = estimate_selectivity(&Expr::col(0, 2).like("%x%"), &st, &d(), None);
        let s3 = estimate_selectivity(&Expr::col(0, 2).like("abc%"), &st, &d(), None);
        assert!(s3 < s0);
        assert_eq!(s0, d().like);
    }

    #[test]
    fn selectivity_always_in_unit_interval() {
        let st = stats();
        let exprs = vec![
            Expr::col(0, 0).eq(Expr::lit(5i64)),
            Expr::col(0, 0).le(Expr::lit(-100i64)),
            Expr::col(0, 0).ge(Expr::lit(10_000i64)),
            Expr::col(0, 1).in_list((0..50).map(Value::Int).collect()),
            Expr::col(0, 0)
                .eq(Expr::lit(1i64))
                .and(Expr::col(0, 1).eq(Expr::lit(1i64)))
                .and(Expr::col(0, 2).eq(Expr::lit("v1"))),
        ];
        for e in exprs {
            let s = estimate_selectivity(&e, &st, &d(), None);
            assert!((0.0..=1.0).contains(&s), "{e} -> {s}");
        }
    }

    #[test]
    fn join_selectivity_formula() {
        assert_eq!(join_selectivity(10.0, 100.0), 0.01);
        assert_eq!(join_selectivity(0.0, 0.0), 1.0);
    }

    #[test]
    fn is_null_frac() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows = (0..10)
            .map(|i| vec![if i < 3 { Value::Null } else { Value::Int(i) }])
            .collect();
        let st = crate::analyze_table(&Table::new(0, "t", schema, rows));
        let s = estimate_selectivity(&Expr::IsNull(Box::new(Expr::col(0, 0))), &st, &d(), None);
        assert!((s - 0.3).abs() < 1e-9);
    }
}
