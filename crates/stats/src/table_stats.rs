//! Per-table and per-column statistics, collected by a full scan
//! ("RUNSTATS" in DB2 terms).

use crate::EquiDepthHistogram;
use pop_storage::Table;
use pop_types::Value;
use std::collections::HashSet;

/// Number of histogram buckets collected per numeric column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of non-null values.
    pub non_null: u64,
    /// Number of NULLs.
    pub nulls: u64,
    /// Exact distinct count of non-null values.
    pub distinct: u64,
    /// Minimum (numeric view) if the column is numeric.
    pub min: Option<f64>,
    /// Maximum (numeric view) if the column is numeric.
    pub max: Option<f64>,
    /// Equi-depth histogram for numeric columns.
    pub histogram: Option<EquiDepthHistogram>,
}

impl ColumnStats {
    /// Fraction of rows that are NULL.
    pub fn null_frac(&self) -> f64 {
        let total = self.non_null + self.nulls;
        if total == 0 {
            0.0
        } else {
            self.nulls as f64 / total as f64
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count at analysis time.
    pub row_count: u64,
    /// Data pages at analysis time (identical across storage backends:
    /// the mem backend keeps a virtual page map with the same packing
    /// rule the paged backend uses for real pages).
    pub pages: u64,
    /// Per-column stats, aligned with the table schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats for column `i`.
    pub fn col(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }

    /// Distinct count of column `i`, at least 1.
    pub fn distinct(&self, i: usize) -> f64 {
        (self.columns[i].distinct as f64).max(1.0)
    }

    /// Synthesize stats for a derived result of `rows` rows where per-column
    /// detail is unknown (used for temp MVs): distinct counts are capped at
    /// the row count, no histograms.
    pub fn derived(rows: u64, num_cols: usize) -> TableStats {
        TableStats {
            row_count: rows,
            pages: 0,
            columns: (0..num_cols)
                .map(|_| ColumnStats {
                    non_null: rows,
                    nulls: 0,
                    distinct: rows.max(1),
                    min: None,
                    max: None,
                    histogram: None,
                })
                .collect(),
        }
    }
}

/// Scan a table and collect full statistics.
pub fn analyze_table(table: &Table) -> TableStats {
    let rows = table.snapshot();
    let ncols = table.schema().len();
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut non_null = 0u64;
        let mut nulls = 0u64;
        let mut distinct: HashSet<Value> = HashSet::new();
        let mut numeric: Vec<f64> = Vec::new();
        let mut all_numeric = true;
        for row in rows.iter() {
            let v = &row[c];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            non_null += 1;
            distinct.insert(v.clone());
            match v.as_f64() {
                Some(x) => numeric.push(x),
                None => all_numeric = false,
            }
        }
        let (min, max, histogram) = if all_numeric && !numeric.is_empty() {
            let min = numeric.iter().copied().fold(f64::INFINITY, f64::min);
            let max = numeric.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let hist = EquiDepthHistogram::build(numeric, HISTOGRAM_BUCKETS);
            (Some(min), Some(max), hist)
        } else {
            (None, None, None)
        };
        columns.push(ColumnStats {
            non_null,
            nulls,
            distinct: distinct.len() as u64,
            min,
            max,
            histogram,
        });
    }
    TableStats {
        row_count: rows.len() as u64,
        pages: table.page_count(),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("s", DataType::Str),
            ("n", DataType::Int),
        ]);
        let rows = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    Value::str(format!("s{}", i % 4)),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ]
            })
            .collect();
        Table::new(0, "t", schema, rows)
    }

    #[test]
    fn analyze_counts() {
        let st = analyze_table(&table());
        assert_eq!(st.row_count, 100);
        assert!(st.pages > 0, "mem tables report virtual page counts");
        assert_eq!(st.col(0).distinct, 10);
        assert_eq!(st.col(1).distinct, 4);
        assert_eq!(st.col(2).nulls, 20);
        assert_eq!(st.col(2).non_null, 80);
        assert!((st.col(2).null_frac() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn numeric_columns_get_histograms() {
        let st = analyze_table(&table());
        assert!(st.col(0).histogram.is_some());
        assert!(st.col(1).histogram.is_none());
        assert_eq!(st.col(0).min, Some(0.0));
        assert_eq!(st.col(0).max, Some(9.0));
    }

    #[test]
    fn distinct_floor() {
        let st = TableStats::derived(0, 2);
        assert_eq!(st.distinct(0), 1.0);
        assert_eq!(st.row_count, 0);
        assert_eq!(st.columns.len(), 2);
    }

    #[test]
    fn empty_table() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let t = Table::new(0, "e", schema, vec![]);
        let st = analyze_table(&t);
        assert_eq!(st.row_count, 0);
        assert_eq!(st.col(0).distinct, 0);
        assert!(st.col(0).histogram.is_none());
    }
}
