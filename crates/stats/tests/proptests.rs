//! Property-based tests for histograms and selectivity estimation.

use pop_expr::Expr;
use pop_stats::{analyze_table, estimate_selectivity, EquiDepthHistogram, SelectivityDefaults};
use pop_storage::Table;
use pop_types::{DataType, Schema, Value};
use proptest::prelude::*;

proptest! {
    /// frac_le is a CDF: within [0,1], monotone, 0 below min, 1 at max.
    #[test]
    fn histogram_is_a_cdf(
        values in prop::collection::vec(-1e6f64..1e6, 1..300),
        buckets in 1usize..64,
        probes in prop::collection::vec(-2e6f64..2e6, 1..20),
    ) {
        let h = EquiDepthHistogram::build(values.clone(), buckets).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for v in sorted {
            let f = h.frac_le(v);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12, "non-monotone at {v}");
            prev = f;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.frac_le(min - 1.0), 0.0);
        prop_assert_eq!(h.frac_le(max), 1.0);
    }

    /// The CDF estimate is close to the empirical CDF (bounded by bucket
    /// granularity).
    #[test]
    fn histogram_tracks_empirical_cdf(
        values in prop::collection::vec(-1000i64..1000, 32..400),
        probe in -1000i64..1000,
    ) {
        let floats: Vec<f64> = values.iter().map(|v| *v as f64).collect();
        let buckets = 32;
        let h = EquiDepthHistogram::build(floats, buckets).unwrap();
        let est = h.frac_le(probe as f64);
        let actual = values.iter().filter(|v| **v <= probe).count() as f64
            / values.len() as f64;
        // One bucket of slack on either side, plus interpolation error.
        let tol = 2.0 / buckets as f64 + 0.02;
        prop_assert!((est - actual).abs() <= tol, "est {est} vs actual {actual}");
    }

    /// Selectivity estimates always land in [0,1], whatever the predicate.
    #[test]
    fn selectivities_stay_in_unit_interval(
        data in prop::collection::vec((-50i64..50, 0i64..10), 1..200),
        k in -60i64..60,
        k2 in -60i64..60,
    ) {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = data.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect();
        let stats = analyze_table(&Table::new(0, "t", schema, rows));
        let d = SelectivityDefaults::default();
        let exprs = vec![
            Expr::col(0, 0).eq(Expr::lit(k)),
            Expr::col(0, 0).le(Expr::lit(k)),
            Expr::col(0, 0).gt(Expr::lit(k)),
            Expr::col(0, 0).between(Expr::lit(k.min(k2)), Expr::lit(k.max(k2))),
            Expr::col(0, 0).eq(Expr::lit(k)).and(Expr::col(0, 1).eq(Expr::lit(k2))),
            Expr::col(0, 0).eq(Expr::lit(k)).or(Expr::col(0, 1).eq(Expr::lit(k2))),
            Expr::col(0, 0).eq(Expr::lit(k)).not(),
            Expr::col(0, 0).in_list(vec![Value::Int(k), Value::Int(k2)]),
        ];
        for e in exprs {
            let s = estimate_selectivity(&e, &stats, &d, None);
            prop_assert!((0.0..=1.0).contains(&s), "{e} -> {s}");
        }
    }

    /// Range estimates roughly track the truth on uniform-ish data.
    #[test]
    fn range_estimate_tracks_actual(
        n in 100usize..400,
        k in 0i64..100,
    ) {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int((i % 100) as i64)]).collect();
        let stats = analyze_table(&Table::new(0, "t", schema, rows));
        let d = SelectivityDefaults::default();
        let est = estimate_selectivity(&Expr::col(0, 0).le(Expr::lit(k)), &stats, &d, None);
        let actual = (0..n).filter(|i| ((i % 100) as i64) <= k).count() as f64 / n as f64;
        prop_assert!((est - actual).abs() < 0.15, "est {est} vs actual {actual}");
    }

    /// NOT(p) and p sum to 1 for non-null columns.
    #[test]
    fn complement_rule(data in prop::collection::vec(-20i64..20, 1..100), k in -25i64..25) {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows = data.iter().map(|v| vec![Value::Int(*v)]).collect();
        let stats = analyze_table(&Table::new(0, "t", schema, rows));
        let d = SelectivityDefaults::default();
        let p = estimate_selectivity(&Expr::col(0, 0).eq(Expr::lit(k)), &stats, &d, None);
        let np = estimate_selectivity(&Expr::col(0, 0).eq(Expr::lit(k)).not(), &stats, &d, None);
        prop_assert!((p + np - 1.0).abs() < 1e-9);
    }
}
