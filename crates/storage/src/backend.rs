//! Storage backends: configuration knobs, the per-catalog storage
//! environment, and the [`StorageBackend`] trait both implementations
//! fulfil.
//!
//! The trait contract that keeps execution byte-identical across
//! backends: `append` assigns consecutive positions in arrival order,
//! `read_range`/`row_at` observe exactly the appended rows, and
//! `page_count`/`page_of_row` are computed with the shared
//! [`PageLayout`] packing rule — so page-aware cost estimates and the
//! runtime's logical page-touch charges depend only on table contents,
//! never on which backend holds them. Physical effects (pool hits,
//! evictions, WAL bytes) are visible only through [`IoStats`].

use crate::buffer::{BufferPool, IoCounters, IoStats};
use crate::page::{PageLayout, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
use parking_lot::Mutex;
use pop_guard::{env_parsed, FaultInjector, Governor};
use pop_types::{PopError, PopResult, Row};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default buffer-pool capacity in bytes (512 frames of 8 KiB).
pub const DEFAULT_BUFFER_POOL_BYTES: u64 = 4 << 20;

/// Which backend a catalog creates tables on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// In-memory rows (`Arc<Vec<Row>>` snapshots) with a virtual page map.
    #[default]
    Mem,
    /// Slotted pages on disk behind the buffer pool, with WAL + B+tree.
    Paged,
}

/// Storage-layer configuration, normally read from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Backend for newly created tables. Env: `POP_STORAGE`
    /// (`mem`/`paged`).
    pub kind: StorageKind,
    /// Page size in bytes, [`MIN_PAGE_SIZE`]..=[`MAX_PAGE_SIZE`]. Env:
    /// `POP_PAGE_SIZE`. Shared by both backends (the mem backend's
    /// virtual page map uses it too), so changing it changes page-aware
    /// cost estimates — identically — everywhere.
    pub page_size: usize,
    /// Buffer-pool capacity in bytes. Env: `POP_BUFFER_POOL_BYTES`.
    pub buffer_pool_bytes: u64,
    /// Write-ahead logging for paged tables. Env: `POP_WAL`
    /// (`on`/`off`/`true`/`false`/`1`/`0`). With the WAL off, rows
    /// appended since the last checkpoint are lost on a crash.
    pub wal: bool,
    /// Directory for paged table files. `None` (the default) uses a
    /// process-unique temporary directory that is removed when the
    /// catalog's storage environment drops; set it explicitly to persist
    /// tables across catalog instances (and to test recovery).
    pub dir: Option<PathBuf>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            kind: StorageKind::Mem,
            page_size: DEFAULT_PAGE_SIZE,
            buffer_pool_bytes: DEFAULT_BUFFER_POOL_BYTES,
            wal: true,
            dir: None,
        }
    }
}

impl StorageConfig {
    /// The paged backend with default geometry.
    pub fn paged() -> Self {
        StorageConfig {
            kind: StorageKind::Paged,
            ..StorageConfig::default()
        }
    }

    /// Configuration from the `POP_STORAGE`, `POP_PAGE_SIZE`,
    /// `POP_BUFFER_POOL_BYTES` and `POP_WAL` environment variables.
    /// Invalid values fall back to the defaults and push a warning
    /// (surfaced on `RunReport`) — the same convention as every other
    /// `POP_*` knob.
    pub fn from_env(warnings: &mut Vec<String>) -> Self {
        let kind = match std::env::var("POP_STORAGE") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "mem" => StorageKind::Mem,
                "paged" => StorageKind::Paged,
                _ => {
                    warnings.push(format!(
                        "POP_STORAGE: invalid value {raw:?} (want \"mem\" or \"paged\"); keeping \"mem\""
                    ));
                    StorageKind::Mem
                }
            },
            Err(_) => StorageKind::Mem,
        };
        let page_size = env_parsed(
            "POP_PAGE_SIZE",
            |v: &usize| (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(v),
            warnings,
        )
        .unwrap_or(DEFAULT_PAGE_SIZE);
        let buffer_pool_bytes = env_parsed("POP_BUFFER_POOL_BYTES", |v: &u64| *v > 0, warnings)
            .unwrap_or(DEFAULT_BUFFER_POOL_BYTES);
        let wal = match std::env::var("POP_WAL") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                _ => {
                    warnings.push(format!(
                        "POP_WAL: invalid value {raw:?}; keeping the default (true)"
                    ));
                    true
                }
            },
            Err(_) => true,
        };
        StorageConfig {
            kind,
            page_size,
            buffer_pool_bytes,
            wal,
            dir: None,
        }
    }

    /// The page layout this configuration implies.
    pub fn layout(&self) -> PageLayout {
        PageLayout::new(self.page_size)
    }
}

/// Process-wide sequence for auto-created storage directories.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared storage runtime of one catalog: the buffer pool, I/O counters,
/// file-id allocator, backing directory and the armed storage faults.
#[derive(Debug)]
pub struct StorageEnv {
    config: StorageConfig,
    io: Arc<IoCounters>,
    pool: Arc<BufferPool>,
    /// Storage-level fault injector (torn writes, short reads), armed by
    /// the driver for chaos runs. Separate from the executor's injector:
    /// storage hooks sit below the operator tree.
    faults: Mutex<Option<FaultInjector>>,
    /// Lazily created backing directory for paged files.
    dir: Mutex<Option<PathBuf>>,
    /// Whether we created (and therefore clean up) the directory.
    owns_dir: bool,
    next_file_id: AtomicU64,
}

impl StorageEnv {
    /// An environment for `config`.
    pub fn new(config: StorageConfig) -> Self {
        let io = Arc::new(IoCounters::default());
        let pool = Arc::new(BufferPool::new(
            config.buffer_pool_bytes,
            config.page_size,
            Arc::clone(&io),
        ));
        let owns_dir = config.dir.is_none();
        StorageEnv {
            config,
            io,
            pool,
            faults: Mutex::new(None),
            dir: Mutex::new(None),
            owns_dir,
            next_file_id: AtomicU64::new(1),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// The shared page layout.
    pub fn layout(&self) -> PageLayout {
        self.config.layout()
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Shared I/O counters.
    pub(crate) fn io(&self) -> &Arc<IoCounters> {
        &self.io
    }

    /// Snapshot of the cumulative I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.io.snapshot()
    }

    /// Allocate a unique file id (buffer-pool key namespace).
    pub(crate) fn alloc_file_id(&self) -> u64 {
        self.next_file_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The backing directory, creating it on first use.
    pub(crate) fn ensure_dir(&self) -> PopResult<PathBuf> {
        let mut dir = self.dir.lock();
        if let Some(d) = dir.as_ref() {
            return Ok(d.clone());
        }
        let path = self.config.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "pop-storage-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        std::fs::create_dir_all(&path).map_err(|e| {
            PopError::Execution(format!("storage io: mkdir {}: {e}", path.display()))
        })?;
        *dir = Some(path.clone());
        Ok(path)
    }

    /// Arm storage-level fault injection for the next operations.
    pub fn arm_faults(&self, injector: FaultInjector) {
        *self.faults.lock() = Some(injector);
    }

    /// Disarm storage faults, returning the injector (fired specs intact).
    pub fn disarm_faults(&self) -> Option<FaultInjector> {
        self.faults.lock().take()
    }

    /// Hook: should this WAL append be torn mid-frame?
    pub(crate) fn fault_torn_write(&self) -> bool {
        self.faults
            .lock()
            .as_mut()
            .is_some_and(FaultInjector::torn_write)
    }

    /// Hook: should this page read come back short? Returns the byte
    /// count to truncate the read to.
    pub(crate) fn fault_short_read(&self) -> Option<usize> {
        let mut faults = self.faults.lock();
        match faults.as_mut() {
            Some(inj) => inj.short_read().then_some(self.config.page_size / 2),
            None => None,
        }
    }

    /// Attach the running query's governor to the buffer pool so page
    /// frames draw from its resident-byte budget.
    pub fn attach_governor(&self, gov: Governor) -> PopResult<()> {
        self.pool.attach_governor(gov)
    }

    /// Detach the governor, releasing all page reservations.
    pub fn detach_governor(&self) {
        self.pool.detach_governor();
    }
}

impl Drop for StorageEnv {
    fn drop(&mut self) {
        // Auto-created directories are ours alone; user-specified ones
        // persist (that is how recovery tests reopen a catalog).
        if self.owns_dir {
            if let Some(dir) = self.dir.get_mut().take() {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

/// The operations a table's storage must provide. Positions are dense
/// (`0..row_count`), assigned by `append` in arrival order.
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Rows stored.
    fn row_count(&self) -> u64;

    /// Data pages occupied (virtual for the mem backend, real for the
    /// paged one — equal for equal contents, by the shared packing rule).
    fn page_count(&self) -> u64;

    /// The page layout in force.
    fn layout(&self) -> PageLayout;

    /// Append `rows` at the end; returns the position of the first.
    fn append(&self, rows: Vec<Row>) -> PopResult<u64>;

    /// All rows as one shared vector. Cheap for the mem backend; the
    /// paged backend materializes (index builds, stats analysis).
    fn snapshot(&self) -> PopResult<Arc<Vec<Row>>>;

    /// Append rows with positions in `[lo, hi)` to `out`.
    fn read_range(&self, lo: u64, hi: u64, out: &mut Vec<Row>) -> PopResult<()>;

    /// The single row at `pos`.
    fn row_at(&self, pos: u64) -> PopResult<Row>;

    /// Logical data-page index (0-based) holding row `pos`.
    fn page_of_row(&self, pos: u64) -> u64;

    /// Does this backend do real page I/O?
    fn is_paged(&self) -> bool;

    /// Make all appended rows durable (paged: flush tail page + meta,
    /// truncate the WAL). No-op for the mem backend.
    fn checkpoint(&self) -> PopResult<()>;

    /// Downcast support ([`MemBackend`](crate::MemBackend) fast paths).
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_mem_with_default_geometry() {
        let c = StorageConfig::default();
        assert_eq!(c.kind, StorageKind::Mem);
        assert_eq!(c.page_size, DEFAULT_PAGE_SIZE);
        assert!(c.wal);
        assert_eq!(StorageConfig::paged().kind, StorageKind::Paged);
    }

    #[test]
    fn invalid_page_size_env_warns_and_falls_back() {
        // Unique variable names so parallel tests never race on the
        // shared process environment; exercised via the same parser
        // from_env uses.
        let mut w = Vec::new();
        std::env::set_var("POP_TEST_STORAGE_PAGE_SIZE", "64");
        let v = env_parsed(
            "POP_TEST_STORAGE_PAGE_SIZE",
            |v: &usize| (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(v),
            &mut w,
        );
        assert_eq!(v, None);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("POP_TEST_STORAGE_PAGE_SIZE"), "{w:?}");
        std::env::remove_var("POP_TEST_STORAGE_PAGE_SIZE");
    }

    #[test]
    fn env_round_trip_all_knobs() {
        // One test touches all four POP storage variables (serially) so
        // parallel test threads never observe a half-set environment.
        let mut w = Vec::new();
        std::env::set_var("POP_STORAGE", "paged");
        std::env::set_var("POP_PAGE_SIZE", "1024");
        std::env::set_var("POP_BUFFER_POOL_BYTES", "65536");
        std::env::set_var("POP_WAL", "off");
        let c = StorageConfig::from_env(&mut w);
        assert_eq!(c.kind, StorageKind::Paged);
        assert_eq!(c.page_size, 1024);
        assert_eq!(c.buffer_pool_bytes, 65536);
        assert!(!c.wal);
        assert!(w.is_empty(), "{w:?}");

        std::env::set_var("POP_STORAGE", "flash");
        std::env::set_var("POP_WAL", "maybe");
        let c = StorageConfig::from_env(&mut w);
        assert_eq!(c.kind, StorageKind::Mem);
        assert!(c.wal);
        assert_eq!(w.len(), 2, "{w:?}");

        for v in [
            "POP_STORAGE",
            "POP_PAGE_SIZE",
            "POP_BUFFER_POOL_BYTES",
            "POP_WAL",
        ] {
            std::env::remove_var(v);
        }
        let c = StorageConfig::from_env(&mut Vec::new());
        assert_eq!(c, StorageConfig::default());
    }

    #[test]
    fn env_allocates_unique_file_ids_and_dir() {
        let env = StorageEnv::new(StorageConfig::paged());
        let a = env.alloc_file_id();
        let b = env.alloc_file_id();
        assert_ne!(a, b);
        let dir = env.ensure_dir().unwrap();
        assert!(dir.is_dir());
        assert_eq!(env.ensure_dir().unwrap(), dir);
        drop(env);
        // Auto-created directory is removed with the environment.
        assert!(!dir.exists());
    }
}
