//! Batched access paths over table snapshots.
//!
//! Scan operators consume snapshots in fixed-size chunks instead of one
//! row per call; these helpers keep the chunking arithmetic (and its
//! borrow shape: a chunk is a plain sub-slice of the snapshot) in the
//! storage layer.

use pop_types::Row;

/// The chunk of `rows` starting at `start`, at most `size` rows long.
/// Returns `None` once `start` is past the end. `size` of 0 is treated
/// as 1 so a caller can never loop without progress.
pub fn chunk(rows: &[Row], start: usize, size: usize) -> Option<(usize, &[Row])> {
    if start >= rows.len() {
        return None;
    }
    let end = start.saturating_add(size.max(1)).min(rows.len());
    Some((start, &rows[start..end]))
}

/// Iterator over consecutive chunks of a snapshot, yielding
/// `(start offset, chunk)`.
#[derive(Debug, Clone)]
pub struct RowChunks<'a> {
    rows: &'a [Row],
    pos: usize,
    size: usize,
}

impl<'a> RowChunks<'a> {
    /// Chunked view of `rows` with the given chunk size.
    pub fn new(rows: &'a [Row], size: usize) -> Self {
        RowChunks {
            rows,
            pos: 0,
            size: size.max(1),
        }
    }
}

impl<'a> Iterator for RowChunks<'a> {
    type Item = (usize, &'a [Row]);

    fn next(&mut self) -> Option<Self::Item> {
        let c = chunk(self.rows, self.pos, self.size)?;
        self.pos += c.1.len();
        Some(c)
    }
}

/// Gather rows at the given positions (an index probe or range result),
/// yielding `(position, row)`. Positions past the end of the snapshot are
/// skipped — an index can briefly trail the snapshot it is paired with.
pub fn gather<'a>(
    rows: &'a [Row],
    positions: &'a [u64],
) -> impl Iterator<Item = (u64, &'a Row)> + 'a {
    positions
        .iter()
        .filter_map(|&p| rows.get(p as usize).map(|r| (p, r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    #[test]
    fn chunks_cover_exactly_once() {
        let r = rows(10);
        let got: Vec<(usize, usize)> = RowChunks::new(&r, 4).map(|(s, c)| (s, c.len())).collect();
        assert_eq!(got, vec![(0, 4), (4, 4), (8, 2)]);
    }

    #[test]
    fn zero_size_still_progresses() {
        let r = rows(3);
        assert_eq!(RowChunks::new(&r, 0).count(), 3);
    }

    #[test]
    fn chunk_past_end_is_none() {
        let r = rows(3);
        assert!(chunk(&r, 3, 8).is_none());
        assert_eq!(chunk(&r, 2, 8).unwrap().1.len(), 1);
    }

    #[test]
    fn gather_skips_out_of_range() {
        let r = rows(3);
        let got: Vec<u64> = gather(&r, &[2, 9, 0]).map(|(p, _)| p).collect();
        assert_eq!(got, vec![2, 0]);
    }
}
