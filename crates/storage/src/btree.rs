//! A paged B+tree over `(Value key, position)` postings.
//!
//! This is the paged implementation of the primary (Sorted) index of a
//! paged table, with exactly the key semantics of the in-memory
//! [`Index`](crate::Index): NULL keys are skipped by the caller,
//! positions are ascending per key, and a range scan yields keys in
//! order with each key's positions ascending.
//!
//! Layout (`<table>.idx`, fixed-size pages):
//!
//! * page 0 — meta: root pid, first-leaf pid, entry/distinct counts;
//! * leaf pages (tag 2) — sorted `(key, postings-chunk)` entries plus a
//!   next-leaf pointer, so range scans walk the chain. A key whose
//!   posting list outgrows a page spills into *chunks*: consecutive
//!   entries (possibly across leaves) with the same key;
//! * internal pages (tag 3) — separator keys over child pids.
//!
//! Descent is *leftmost* (the child before the first separator greater
//! than the key), then forward along the leaf chain — so chunked keys
//! are always collected completely. Bulk build packs leaves tightly and
//! stacks internal levels bottom-up; appends insert into leaves (with
//! splits) and rebuild the internal levels from the leaf chain, which
//! stays cheap because internals are a tiny fraction of the tree.

use crate::backend::StorageEnv;
use crate::page::{decode_row, encode_row};
use crate::pager::PageFile;
use parking_lot::Mutex;
use pop_types::{PopError, PopResult, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// B+tree meta-page tag.
const TAG_BMETA: u8 = 4;
/// Leaf-page tag.
const TAG_LEAF: u8 = 2;
/// Internal-page tag.
const TAG_INT: u8 = 3;
/// Bytes of fixed header on leaf and internal pages.
const NODE_HDR: usize = 11;

fn corrupt(what: &str) -> PopError {
    PopError::Execution(format!("btree: corrupt page ({what})"))
}

/// Encode a key as a one-value row (length-prefixed, self-delimiting).
fn encode_key(key: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_row(std::slice::from_ref(key), &mut out);
    out
}

/// Decode a key at `*at`, advancing past it.
fn decode_key(buf: &[u8], at: &mut usize) -> PopResult<Value> {
    let mut row = decode_row(buf, at)?;
    row.pop().ok_or_else(|| corrupt("empty key"))
}

/// One leaf entry: a key and one chunk of its posting list.
#[derive(Debug, Clone)]
struct LeafEntry {
    key: Value,
    keyb: Vec<u8>,
    pos: Vec<u64>,
}

impl LeafEntry {
    fn new(key: Value, pos: Vec<u64>) -> Self {
        let keyb = encode_key(&key);
        LeafEntry { key, keyb, pos }
    }

    /// Serialized size (slot-directory bytes excluded).
    fn size(&self) -> usize {
        self.keyb.len() + 4 + 8 * self.pos.len()
    }
}

/// Greedy packer: entries (chunking long posting lists) into leaf pages.
struct LeafPacker {
    ps: usize,
    pages: Vec<Vec<LeafEntry>>,
    cur: Vec<LeafEntry>,
    cur_bytes: usize,
}

impl LeafPacker {
    fn new(ps: usize) -> Self {
        LeafPacker {
            ps,
            pages: Vec::new(),
            cur: Vec::new(),
            cur_bytes: 0,
        }
    }

    fn flush(&mut self) {
        if !self.cur.is_empty() {
            self.pages.push(std::mem::take(&mut self.cur));
            self.cur_bytes = 0;
        }
    }

    /// Positions of `entry` that fit the current page (given its key).
    fn capacity(&self, keyb_len: usize) -> usize {
        let used = NODE_HDR + self.cur_bytes + 2 * (self.cur.len() + 1);
        let avail = self.ps.saturating_sub(used + keyb_len + 4);
        avail / 8
    }

    fn push(&mut self, entry: LeafEntry) -> PopResult<()> {
        let LeafEntry { key, keyb, mut pos } = entry;
        while !pos.is_empty() {
            let take = self.capacity(keyb.len()).min(pos.len());
            if take == 0 {
                if self.cur.is_empty() {
                    return Err(PopError::Execution(format!(
                        "btree: key of {} encoded bytes exceeds the {}-byte page size",
                        keyb.len(),
                        self.ps
                    )));
                }
                self.flush();
                continue;
            }
            let rest = pos.split_off(take);
            let chunk = LeafEntry {
                key: key.clone(),
                keyb: keyb.clone(),
                pos,
            };
            self.cur_bytes += chunk.size();
            self.cur.push(chunk);
            pos = rest;
        }
        Ok(())
    }

    fn finish(mut self) -> Vec<Vec<LeafEntry>> {
        self.flush();
        self.pages
    }
}

/// Serialize one leaf page.
fn leaf_to_bytes(ps: usize, next: u64, entries: &[LeafEntry]) -> Vec<u8> {
    let mut buf = vec![0u8; ps];
    buf[0] = TAG_LEAF;
    buf[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
    buf[3..11].copy_from_slice(&next.to_le_bytes());
    let mut at = NODE_HDR;
    for (i, e) in entries.iter().enumerate() {
        let slot = ps - 2 * (i + 1);
        buf[slot..slot + 2].copy_from_slice(&(at as u16).to_le_bytes());
        buf[at..at + e.keyb.len()].copy_from_slice(&e.keyb);
        at += e.keyb.len();
        buf[at..at + 4].copy_from_slice(&(e.pos.len() as u32).to_le_bytes());
        at += 4;
        for p in &e.pos {
            buf[at..at + 8].copy_from_slice(&p.to_le_bytes());
            at += 8;
        }
    }
    buf
}

/// Parse one leaf page: `(next, entries)`.
fn parse_leaf(bytes: &[u8]) -> PopResult<(u64, Vec<LeafEntry>)> {
    if bytes.len() < NODE_HDR || bytes[0] != TAG_LEAF {
        return Err(corrupt("not a leaf"));
    }
    let n = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
    let next = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let slot = bytes.len() - 2 * (i + 1);
        let mut at = u16::from_le_bytes(bytes[slot..slot + 2].try_into().unwrap()) as usize;
        let key_at = at;
        let key = decode_key(bytes, &mut at)?;
        let keyb = bytes[key_at..at].to_vec();
        let np = u32::from_le_bytes(
            bytes
                .get(at..at + 4)
                .ok_or_else(|| corrupt("postings len"))?
                .try_into()
                .unwrap(),
        ) as usize;
        at += 4;
        let mut pos = Vec::with_capacity(np);
        for _ in 0..np {
            pos.push(u64::from_le_bytes(
                bytes
                    .get(at..at + 8)
                    .ok_or_else(|| corrupt("posting"))?
                    .try_into()
                    .unwrap(),
            ));
            at += 8;
        }
        entries.push(LeafEntry { key, keyb, pos });
    }
    Ok((next, entries))
}

/// Serialize one internal page.
fn internal_to_bytes(ps: usize, child0: u64, keys: &[(Vec<u8>, u64)]) -> Vec<u8> {
    let mut buf = vec![0u8; ps];
    buf[0] = TAG_INT;
    buf[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
    buf[3..11].copy_from_slice(&child0.to_le_bytes());
    let mut at = NODE_HDR;
    for (i, (keyb, child)) in keys.iter().enumerate() {
        let slot = ps - 2 * (i + 1);
        buf[slot..slot + 2].copy_from_slice(&(at as u16).to_le_bytes());
        buf[at..at + keyb.len()].copy_from_slice(keyb);
        at += keyb.len();
        buf[at..at + 8].copy_from_slice(&child.to_le_bytes());
        at += 8;
    }
    buf
}

/// Parse one internal page: `(child0, separator keys with children)`.
fn parse_internal(bytes: &[u8]) -> PopResult<(u64, Vec<(Value, u64)>)> {
    if bytes.len() < NODE_HDR || bytes[0] != TAG_INT {
        return Err(corrupt("not an internal node"));
    }
    let n = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
    let child0 = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        let slot = bytes.len() - 2 * (i + 1);
        let mut at = u16::from_le_bytes(bytes[slot..slot + 2].try_into().unwrap()) as usize;
        let key = decode_key(bytes, &mut at)?;
        let child = u64::from_le_bytes(
            bytes
                .get(at..at + 8)
                .ok_or_else(|| corrupt("child pid"))?
                .try_into()
                .unwrap(),
        );
        keys.push((key, child));
    }
    Ok((child0, keys))
}

#[derive(Debug)]
struct BTreeInner {
    file: PageFile,
    root: u64,
    first_leaf: u64,
    entries: u64,
    distinct: u64,
}

/// A paged B+tree primary index.
#[derive(Debug)]
pub struct BTree {
    env: Arc<StorageEnv>,
    file_id: u64,
    inner: Mutex<BTreeInner>,
}

impl BTree {
    /// Build a fresh tree at `path` from a complete key→positions map
    /// (NULLs already skipped, positions ascending). Truncates any
    /// existing file.
    pub fn create(
        env: Arc<StorageEnv>,
        path: PathBuf,
        map: &BTreeMap<Value, Vec<u64>>,
    ) -> PopResult<BTree> {
        let _ = std::fs::remove_file(&path);
        let ps = env.config().page_size;
        let file = PageFile::open(path, ps)?;
        let file_id = env.alloc_file_id();
        let tree = BTree {
            env,
            file_id,
            inner: Mutex::new(BTreeInner {
                file,
                root: 0,
                first_leaf: 0,
                entries: 0,
                distinct: 0,
            }),
        };
        {
            let mut inner = tree.inner.lock();
            let mut packer = LeafPacker::new(ps);
            for (key, pos) in map {
                inner.entries += pos.len() as u64;
                inner.distinct += 1;
                packer.push(LeafEntry::new(key.clone(), pos.clone()))?;
            }
            let leaves = packer.finish();
            let n_leaves = leaves.len() as u64;
            let mut children = Vec::with_capacity(leaves.len());
            for (i, entries) in leaves.iter().enumerate() {
                let pid = 1 + i as u64;
                let next = if pid < n_leaves { pid + 1 } else { 0 };
                tree.write_page(&mut inner, pid, &leaf_to_bytes(ps, next, entries))?;
                children.push((entries[0].keyb.clone(), pid));
            }
            inner.first_leaf = u64::from(n_leaves > 0);
            inner.root = tree.build_internals(&mut inner, children)?;
            tree.write_meta(&mut inner)?;
            inner.file.sync()?;
        }
        Ok(tree)
    }

    /// Total postings (equals the mem index's `entries()`).
    pub fn entry_count(&self) -> u64 {
        self.inner.lock().entries
    }

    /// Distinct keys (equals the mem index's `distinct_keys()`).
    pub fn distinct_keys(&self) -> u64 {
        self.inner.lock().distinct
    }

    /// Remove the backing file (temporary-table cleanup).
    pub fn unlink(&self) {
        let inner = self.inner.lock();
        self.env.pool().invalidate_file(self.file_id);
        let _ = std::fs::remove_file(inner.file.path());
    }

    /// All positions for `key`, ascending; empty when absent.
    pub fn probe(&self, key: &Value) -> PopResult<Vec<u64>> {
        let mut inner = self.inner.lock();
        let Some(mut pid) = self.descend(&mut inner, key)? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        loop {
            let page = self.read_page(&mut inner, pid)?;
            let (next, entries) = parse_leaf(&page)?;
            for e in entries {
                match e.key.cmp(key) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => out.extend(e.pos),
                    std::cmp::Ordering::Greater => return Ok(out),
                }
            }
            if next == 0 {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// Positions with `lo <= key <= hi` (either bound optional), keys in
    /// order, positions ascending per key.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> PopResult<Vec<u64>> {
        let mut inner = self.inner.lock();
        let mut pid = match lo {
            Some(lo) => match self.descend(&mut inner, lo)? {
                Some(pid) => pid,
                None => return Ok(Vec::new()),
            },
            None => inner.first_leaf,
        };
        if pid == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        loop {
            let page = self.read_page(&mut inner, pid)?;
            let (next, entries) = parse_leaf(&page)?;
            for e in entries {
                if lo.is_some_and(|lo| e.key < *lo) {
                    continue;
                }
                if hi.is_some_and(|hi| e.key > *hi) {
                    return Ok(out);
                }
                out.extend(e.pos);
            }
            if next == 0 {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// Append `additions` (new positions per key, all greater than any
    /// position already stored). Splits full leaves and rebuilds the
    /// internal levels when the leaf set changes.
    pub fn insert(&self, additions: &BTreeMap<Value, Vec<u64>>) -> PopResult<()> {
        if additions.is_empty() {
            return Ok(());
        }
        let ps = self.env.config().page_size;
        let mut inner = self.inner.lock();
        let mut split = false;
        for (key, new_pos) in additions {
            inner.entries += new_pos.len() as u64;
            if inner.root == 0 {
                // First key of an empty tree.
                let mut packer = LeafPacker::new(ps);
                packer.push(LeafEntry::new(key.clone(), new_pos.clone()))?;
                let pages = packer.finish();
                let first = self.append_chain(&mut inner, &pages, 0)?;
                inner.root = first;
                inner.first_leaf = first;
                inner.distinct += 1;
                split = true;
                continue;
            }
            // Find the leaf holding the last chunk of `key` (append
            // case), or the leaf where `key` sorts (fresh-key case).
            let mut pid = self
                .descend(&mut inner, key)?
                .ok_or_else(|| corrupt("no leaf"))?;
            let (mut target_pid, mut target_idx, mut fresh_at) = (None, 0usize, None);
            'walk: loop {
                let page = self.read_page(&mut inner, pid)?;
                let (next, entries) = parse_leaf(&page)?;
                for (i, e) in entries.iter().enumerate() {
                    match e.key.cmp(key) {
                        std::cmp::Ordering::Less => {}
                        std::cmp::Ordering::Equal => {
                            target_pid = Some(pid);
                            target_idx = i;
                        }
                        std::cmp::Ordering::Greater => {
                            if target_pid.is_none() && fresh_at.is_none() {
                                fresh_at = Some((pid, i));
                            }
                            break 'walk;
                        }
                    }
                }
                if next == 0 {
                    if target_pid.is_none() && fresh_at.is_none() {
                        fresh_at = Some((pid, entries.len()));
                    }
                    break;
                }
                pid = next;
            }
            let (edit_pid, edit) = if let Some(pid) = target_pid {
                (pid, None)
            } else {
                inner.distinct += 1;
                let (pid, idx) = fresh_at.ok_or_else(|| corrupt("no insert point"))?;
                (pid, Some(idx))
            };
            // Load, modify, repack the edited leaf.
            let page = self.read_page(&mut inner, edit_pid)?;
            let (old_next, mut entries) = parse_leaf(&page)?;
            match edit {
                None => entries[target_idx].pos.extend_from_slice(new_pos),
                Some(idx) => entries.insert(idx, LeafEntry::new(key.clone(), new_pos.clone())),
            }
            let mut packer = LeafPacker::new(ps);
            for e in entries {
                packer.push(e)?;
            }
            let pages = packer.finish();
            if pages.len() == 1 {
                self.write_page(
                    &mut inner,
                    edit_pid,
                    &leaf_to_bytes(ps, old_next, &pages[0]),
                )?;
            } else {
                // First repacked page keeps the pid; the rest are new
                // leaves chained in front of the old successor.
                let rest = self.append_chain(&mut inner, &pages[1..], old_next)?;
                self.write_page(&mut inner, edit_pid, &leaf_to_bytes(ps, rest, &pages[0]))?;
                split = true;
            }
        }
        if split {
            let children = self.leaf_children(&mut inner)?;
            inner.root = self.build_internals(&mut inner, children)?;
        }
        self.write_meta(&mut inner)?;
        inner.file.sync()
    }

    /// Structural self-check: leaf chain strictly ordered by (key, chunk
    /// order), counts consistent. Returns `(entries, distinct)`.
    pub fn verify(&self) -> PopResult<(u64, u64)> {
        let mut inner = self.inner.lock();
        let mut pid = inner.first_leaf;
        let (mut entries, mut distinct) = (0u64, 0u64);
        let mut last: Option<Value> = None;
        let mut last_pos: Option<u64> = None;
        while pid != 0 {
            let page = self.read_page(&mut inner, pid)?;
            let (next, es) = parse_leaf(&page)?;
            for e in es {
                match last.as_ref().map(|l| l.cmp(&e.key)) {
                    Some(std::cmp::Ordering::Greater) => return Err(corrupt("keys out of order")),
                    Some(std::cmp::Ordering::Equal) => {}
                    _ => {
                        distinct += 1;
                        last_pos = None;
                    }
                }
                for &p in &e.pos {
                    if last_pos.is_some_and(|lp| lp >= p) {
                        return Err(corrupt("positions out of order"));
                    }
                    last_pos = Some(p);
                }
                entries += e.pos.len() as u64;
                last = Some(e.key);
            }
            pid = next;
        }
        if entries != inner.entries || distinct != inner.distinct {
            return Err(corrupt("count mismatch"));
        }
        Ok((entries, distinct))
    }

    /// Leftmost descent: the leaf where `key`'s run could start. `None`
    /// for an empty tree.
    fn descend(&self, inner: &mut BTreeInner, key: &Value) -> PopResult<Option<u64>> {
        let mut pid = inner.root;
        if pid == 0 {
            return Ok(None);
        }
        loop {
            let page = self.read_page(inner, pid)?;
            match page[0] {
                TAG_LEAF => return Ok(Some(pid)),
                TAG_INT => {
                    let (child0, keys) = parse_internal(&page)?;
                    // Child before the first separator > key... precisely:
                    // the child after the last separator strictly < key.
                    let idx = keys.partition_point(|(k, _)| k < key);
                    pid = if idx == 0 { child0 } else { keys[idx - 1].1 };
                }
                _ => return Err(corrupt("unexpected tag")),
            }
        }
    }

    /// Read page `pid` through the buffer pool.
    fn read_page(&self, inner: &mut BTreeInner, pid: u64) -> PopResult<Arc<Vec<u8>>> {
        let env = &self.env;
        let file = &mut inner.file;
        env.pool().get((self.file_id, pid), || {
            let trunc = env.fault_short_read();
            env.io().pages_read.fetch_add(1, Ordering::Relaxed);
            file.read_page(pid, trunc)
        })
    }

    /// Write page `pid` and drop any stale pool frame.
    fn write_page(&self, inner: &mut BTreeInner, pid: u64, bytes: &[u8]) -> PopResult<()> {
        inner.file.write_page(pid, bytes)?;
        self.env.io().pages_written.fetch_add(1, Ordering::Relaxed);
        self.env.pool().invalidate((self.file_id, pid));
        Ok(())
    }

    /// Append `pages` as a chain of fresh leaves at the end of the file,
    /// terminating at `tail_next`; returns the first new pid (or
    /// `tail_next` when `pages` is empty).
    fn append_chain(
        &self,
        inner: &mut BTreeInner,
        pages: &[Vec<LeafEntry>],
        tail_next: u64,
    ) -> PopResult<u64> {
        if pages.is_empty() {
            return Ok(tail_next);
        }
        let ps = self.env.config().page_size;
        let base = inner.file.page_count();
        for (i, entries) in pages.iter().enumerate() {
            let pid = base + i as u64;
            let next = if i + 1 < pages.len() {
                pid + 1
            } else {
                tail_next
            };
            self.write_page(inner, pid, &leaf_to_bytes(ps, next, entries))?;
        }
        Ok(base)
    }

    /// Walk the leaf chain collecting `(first key, pid)` per leaf.
    fn leaf_children(&self, inner: &mut BTreeInner) -> PopResult<Vec<(Vec<u8>, u64)>> {
        let mut children = Vec::new();
        let mut pid = inner.first_leaf;
        while pid != 0 {
            let page = self.read_page(inner, pid)?;
            let (next, entries) = parse_leaf(&page)?;
            let first = entries.first().ok_or_else(|| corrupt("empty leaf"))?;
            children.push((first.keyb.clone(), pid));
            pid = next;
        }
        Ok(children)
    }

    /// Stack internal levels over `children` bottom-up; returns the root
    /// pid (0 for an empty tree). New nodes go at the end of the file;
    /// superseded internals become dead pages (reclaimed on rebuild).
    fn build_internals(
        &self,
        inner: &mut BTreeInner,
        children: Vec<(Vec<u8>, u64)>,
    ) -> PopResult<u64> {
        let ps = self.env.config().page_size;
        let mut level = children;
        if level.is_empty() {
            return Ok(0);
        }
        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let node_first = level[i].0.clone();
                let child0 = level[i].1;
                i += 1;
                let mut keys: Vec<(Vec<u8>, u64)> = Vec::new();
                let mut bytes = 0usize;
                while i < level.len() {
                    let sz = level[i].0.len() + 8;
                    if NODE_HDR + bytes + sz + 2 * (keys.len() + 1) > ps {
                        break;
                    }
                    bytes += sz;
                    keys.push(level[i].clone());
                    i += 1;
                }
                let pid = inner.file.page_count();
                self.write_page(inner, pid, &internal_to_bytes(ps, child0, &keys))?;
                next_level.push((node_first, pid));
            }
            level = next_level;
        }
        Ok(level[0].1)
    }

    /// Persist the meta page.
    fn write_meta(&self, inner: &mut BTreeInner) -> PopResult<()> {
        let ps = self.env.config().page_size;
        let mut buf = vec![0u8; ps];
        buf[0] = TAG_BMETA;
        buf[1..9].copy_from_slice(&inner.root.to_le_bytes());
        buf[9..17].copy_from_slice(&inner.first_leaf.to_le_bytes());
        buf[17..25].copy_from_slice(&inner.entries.to_le_bytes());
        buf[25..33].copy_from_slice(&inner.distinct.to_le_bytes());
        inner.file.write_page(0, &buf)?;
        self.env.pool().invalidate((self.file_id, 0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{StorageConfig, StorageEnv};

    fn env(page_size: usize) -> Arc<StorageEnv> {
        Arc::new(StorageEnv::new(StorageConfig {
            page_size,
            ..StorageConfig::paged()
        }))
    }

    fn idx_path(env: &StorageEnv, name: &str) -> PathBuf {
        env.ensure_dir().unwrap().join(format!("{name}.idx"))
    }

    fn int_map(n: i64, dup: i64) -> BTreeMap<Value, Vec<u64>> {
        // Keys 0..n, each with `dup` ascending positions.
        let mut m = BTreeMap::new();
        for k in 0..n {
            let pos = (0..dup).map(|d| (k * dup + d) as u64).collect();
            m.insert(Value::Int(k), pos);
        }
        m
    }

    #[test]
    fn bulk_build_probe_and_range() {
        let env = env(512);
        let map = int_map(500, 2);
        let t = BTree::create(Arc::clone(&env), idx_path(&env, "bulk"), &map).unwrap();
        assert_eq!(t.entry_count(), 1000);
        assert_eq!(t.distinct_keys(), 500);
        t.verify().unwrap();
        assert_eq!(t.probe(&Value::Int(123)).unwrap(), vec![246, 247]);
        assert_eq!(t.probe(&Value::Int(0)).unwrap(), vec![0, 1]);
        assert_eq!(t.probe(&Value::Int(499)).unwrap(), vec![998, 999]);
        assert!(t.probe(&Value::Int(500)).unwrap().is_empty());
        let r = t
            .range(Some(&Value::Int(10)), Some(&Value::Int(12)))
            .unwrap();
        assert_eq!(r, vec![20, 21, 22, 23, 24, 25]);
        let all = t.range(None, None).unwrap();
        assert_eq!(all.len(), 1000);
        assert_eq!(all, (0..1000u64).collect::<Vec<_>>());
        let head = t.range(None, Some(&Value::Int(1))).unwrap();
        assert_eq!(head, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skewed_key_spills_chunks_across_leaves() {
        let env = env(512);
        // One key with far more postings than a 512-byte page holds.
        let mut map = BTreeMap::new();
        map.insert(Value::str("hot"), (0..500u64).collect::<Vec<_>>());
        map.insert(Value::str("rare"), vec![500]);
        let t = BTree::create(Arc::clone(&env), idx_path(&env, "skew"), &map).unwrap();
        t.verify().unwrap();
        assert_eq!(t.probe(&Value::str("hot")).unwrap().len(), 500);
        assert_eq!(t.probe(&Value::str("rare")).unwrap(), vec![500]);
        assert_eq!(t.range(None, None).unwrap().len(), 501);
    }

    #[test]
    fn inserts_append_split_and_stay_ordered() {
        let env = env(512);
        let t = BTree::create(Arc::clone(&env), idx_path(&env, "ins"), &int_map(50, 1)).unwrap();
        // Existing keys get new (larger) positions; new keys interleave.
        let mut add = BTreeMap::new();
        for k in 0..50 {
            add.insert(Value::Int(k), vec![100 + k as u64]);
        }
        for k in 200..400 {
            add.insert(Value::Int(k), vec![1000 + k as u64]);
        }
        t.insert(&add).unwrap();
        t.verify().unwrap();
        assert_eq!(t.entry_count(), 50 + 50 + 200);
        assert_eq!(t.distinct_keys(), 250);
        assert_eq!(t.probe(&Value::Int(7)).unwrap(), vec![7, 107]);
        assert_eq!(t.probe(&Value::Int(300)).unwrap(), vec![1300]);
        let r = t
            .range(Some(&Value::Int(49)), Some(&Value::Int(200)))
            .unwrap();
        assert_eq!(r, vec![49, 149, 1200]);
    }

    #[test]
    fn empty_tree_then_grow() {
        let env = env(512);
        let t = BTree::create(Arc::clone(&env), idx_path(&env, "empty"), &BTreeMap::new()).unwrap();
        assert!(t.probe(&Value::Int(1)).unwrap().is_empty());
        assert!(t.range(None, None).unwrap().is_empty());
        let mut add = BTreeMap::new();
        add.insert(Value::Int(5), vec![0, 3]);
        t.insert(&add).unwrap();
        t.verify().unwrap();
        assert_eq!(t.probe(&Value::Int(5)).unwrap(), vec![0, 3]);
        assert_eq!(t.entry_count(), 2);
    }

    #[test]
    fn short_read_fault_surfaces_typed_error() {
        use pop_guard::{FaultInjector, FaultPlan};
        let env = env(512);
        let t = BTree::create(Arc::clone(&env), idx_path(&env, "fault"), &int_map(200, 1)).unwrap();
        env.pool().clear();
        env.arm_faults(FaultInjector::new(
            FaultPlan::parse_spec("shortread@0").unwrap(),
        ));
        let err = t.probe(&Value::Int(100)).unwrap_err();
        assert!(err.to_string().contains("short read"), "{err}");
        env.disarm_faults();
        // Undamaged on disk: the next probe succeeds.
        assert_eq!(t.probe(&Value::Int(100)).unwrap(), vec![100]);
    }
}
