//! The buffer pool: a clock-eviction page cache shared by every paged
//! table of a catalog.
//!
//! Resident frames are charged against the query's [`Governor`]
//! resident-byte ledger, so pinned pages and exec memory (hash builds,
//! sorts, temp buffers) draw from one `max_resident_bytes` budget: the
//! pool reserves a frame's bytes when it loads a page and releases them
//! when the clock evicts it. When a reservation would cross the budget,
//! the pool first tries to evict its own frames; only if nothing can be
//! freed does the typed budget error propagate to the scan that needed
//! the page.

use parking_lot::Mutex;
use pop_guard::Governor;
use pop_types::PopResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative I/O counters for one storage environment (all atomics, so
/// every backend and the pool share one instance).
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Physical page reads from disk.
    pub pages_read: AtomicU64,
    /// Physical page writes to disk.
    pub pages_written: AtomicU64,
    /// Buffer-pool lookups satisfied by a resident frame.
    pub pool_hits: AtomicU64,
    /// Buffer-pool lookups that had to load the page.
    pub pool_misses: AtomicU64,
    /// Frames evicted by the clock hand.
    pub evictions: AtomicU64,
    /// WAL records appended.
    pub wal_records: AtomicU64,
    /// WAL bytes appended.
    pub wal_bytes: AtomicU64,
    /// WAL records replayed during recovery.
    pub wal_replayed: AtomicU64,
}

/// A point-in-time copy of [`IoCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Physical page reads from disk.
    pub pages_read: u64,
    /// Physical page writes to disk.
    pub pages_written: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses.
    pub pool_misses: u64,
    /// Clock evictions.
    pub evictions: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// WAL records replayed during recovery.
    pub wal_replayed: u64,
}

impl IoCounters {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
        }
    }
}

impl IoStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            wal_records: self.wal_records.saturating_sub(earlier.wal_records),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_replayed: self.wal_replayed.saturating_sub(earlier.wal_replayed),
        }
    }
}

/// Frame identity: `(backend file id, page id)`.
pub type PageKey = (u64, u64);

#[derive(Debug)]
struct Frame {
    key: PageKey,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<PageKey, usize>,
    hand: usize,
    /// The query's governor handle, attached for the duration of a run.
    gov: Option<Governor>,
}

/// Clock-eviction page cache. Capacity is expressed in bytes and rounded
/// down to whole frames (at least one).
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    page_size: usize,
    max_frames: usize,
    io: Arc<IoCounters>,
}

impl BufferPool {
    /// A pool of `capacity_bytes / page_size` frames (minimum 1).
    pub fn new(capacity_bytes: u64, page_size: usize, io: Arc<IoCounters>) -> Self {
        let max_frames = ((capacity_bytes / page_size as u64).max(1)) as usize;
        BufferPool {
            inner: Mutex::new(PoolInner::default()),
            page_size,
            max_frames,
            io,
        }
    }

    /// Frame capacity.
    pub fn max_frames(&self) -> usize {
        self.max_frames
    }

    /// Frames currently resident.
    pub fn resident_frames(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Attach the running query's governor: resident frames are reserved
    /// against its ledger immediately, and subsequent loads/evictions keep
    /// the ledger in sync. Fails when the current residency already
    /// exceeds the budget (after evicting as much as possible).
    pub fn attach_governor(&self, gov: Governor) -> PopResult<()> {
        let mut inner = self.inner.lock();
        let mut gov = gov;
        let mut resident = inner.frames.len();
        loop {
            match gov.reserve(resident as u64 * self.page_size as u64) {
                Ok(()) => break,
                Err(e) => {
                    gov.release(resident as u64 * self.page_size as u64);
                    if resident == 0 {
                        return Err(e);
                    }
                    // Shed frames until the pool fits the budget.
                    Self::evict_one(&mut inner, &self.io, self.page_size);
                    resident = inner.frames.len();
                }
            }
        }
        inner.gov = Some(gov);
        Ok(())
    }

    /// Detach the governor, releasing every resident frame's reservation.
    pub fn detach_governor(&self) {
        let mut inner = self.inner.lock();
        let resident = inner.frames.len() as u64 * self.page_size as u64;
        if let Some(mut gov) = inner.gov.take() {
            gov.release(resident);
        }
    }

    /// Fetch page `key`, loading it via `load` on a miss (evicting by
    /// clock when the pool is full). The returned bytes stay valid even
    /// if the frame is evicted afterwards.
    pub fn get(
        &self,
        key: PageKey,
        load: impl FnOnce() -> PopResult<Vec<u8>>,
    ) -> PopResult<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            self.io.pool_hits.fetch_add(1, Ordering::Relaxed);
            inner.frames[idx].referenced = true;
            return Ok(Arc::clone(&inner.frames[idx].data));
        }
        self.io.pool_misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(load()?);
        while inner.frames.len() >= self.max_frames {
            Self::evict_one(&mut inner, &self.io, self.page_size);
        }
        // Charge the new frame to the governor; shed other frames first
        // if the reservation would cross the resident-byte budget.
        if inner.gov.is_some() {
            loop {
                let r = inner.gov.as_mut().unwrap().reserve(self.page_size as u64);
                match r {
                    Ok(()) => break,
                    Err(e) => {
                        inner.gov.as_mut().unwrap().release(self.page_size as u64);
                        if inner.frames.is_empty() {
                            return Err(e);
                        }
                        Self::evict_one(&mut inner, &self.io, self.page_size);
                    }
                }
            }
        }
        let idx = inner.frames.len();
        inner.frames.push(Frame {
            key,
            data: Arc::clone(&data),
            referenced: true,
        });
        inner.map.insert(key, idx);
        Ok(data)
    }

    /// Drop a (possibly) resident page after its backing bytes changed.
    pub fn invalidate(&self, key: PageKey) {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.map.remove(&key) {
            Self::remove_frame(&mut inner, idx, &self.io, self.page_size, false);
        }
    }

    /// Drop every resident frame of `file_id` (table dropped / reloaded).
    pub fn invalidate_file(&self, file_id: u64) {
        let mut inner = self.inner.lock();
        while let Some((&key, _)) = inner.map.iter().find(|((f, _), _)| *f == file_id) {
            let idx = inner.map.remove(&key).unwrap();
            Self::remove_frame(&mut inner, idx, &self.io, self.page_size, false);
        }
    }

    /// Evict everything (cold-cache benchmarking).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        while !inner.frames.is_empty() {
            let idx = inner.frames.len() - 1;
            let key = inner.frames[idx].key;
            inner.map.remove(&key);
            Self::remove_frame(&mut inner, idx, &self.io, self.page_size, false);
        }
    }

    /// Advance the clock hand to a victim and remove it.
    fn evict_one(inner: &mut PoolInner, io: &IoCounters, page_size: usize) {
        if inner.frames.is_empty() {
            return;
        }
        loop {
            let hand = inner.hand % inner.frames.len();
            if inner.frames[hand].referenced {
                inner.frames[hand].referenced = false;
                inner.hand = hand + 1;
            } else {
                let key = inner.frames[hand].key;
                inner.map.remove(&key);
                io.evictions.fetch_add(1, Ordering::Relaxed);
                Self::remove_frame(inner, hand, io, page_size, true);
                return;
            }
        }
    }

    /// Swap-remove frame `idx`, fixing the displaced frame's map entry and
    /// releasing the governor reservation. (`counted` distinguishes clock
    /// evictions, already counted by the caller, from invalidations.)
    fn remove_frame(
        inner: &mut PoolInner,
        idx: usize,
        _io: &IoCounters,
        page_size: usize,
        _counted: bool,
    ) {
        inner.frames.swap_remove(idx);
        if idx < inner.frames.len() {
            let moved_key = inner.frames[idx].key;
            inner.map.insert(moved_key, idx);
        }
        if let Some(gov) = inner.gov.as_mut() {
            gov.release(page_size as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_guard::Budget;

    fn pool(frames: u64) -> (BufferPool, Arc<IoCounters>) {
        let io = Arc::new(IoCounters::default());
        (BufferPool::new(frames * 64, 64, Arc::clone(&io)), io)
    }

    #[test]
    fn hit_after_load() {
        let (p, io) = pool(4);
        let a = p.get((0, 1), || Ok(vec![1u8; 64])).unwrap();
        let b = p.get((0, 1), || panic!("must not reload")).unwrap();
        assert_eq!(a, b);
        let s = io.snapshot();
        assert_eq!((s.pool_hits, s.pool_misses), (1, 1));
    }

    #[test]
    fn clock_evicts_at_capacity() {
        let (p, io) = pool(2);
        for pid in 0..4u64 {
            p.get((0, pid), || Ok(vec![pid as u8; 64])).unwrap();
        }
        assert_eq!(p.resident_frames(), 2);
        assert_eq!(io.snapshot().evictions, 2);
        // Evicted pages reload (a miss, not a hit).
        p.get((0, 0), || Ok(vec![0u8; 64])).unwrap();
        assert_eq!(io.snapshot().pool_misses, 5);
    }

    #[test]
    fn governor_bounds_resident_pages() {
        let (p, _io) = pool(100);
        let gov = Governor::new(
            Budget {
                max_resident_bytes: Some(3 * 64),
                ..Budget::default()
            },
            None,
        );
        p.attach_governor(gov.clone_shared()).unwrap();
        for pid in 0..10u64 {
            p.get((0, pid), || Ok(vec![0u8; 64])).unwrap();
        }
        // The pool held itself to the byte budget by self-evicting. (The
        // peak can overshoot by one transient failed reservation.)
        assert!(p.resident_frames() <= 3, "{}", p.resident_frames());
        p.detach_governor();
        assert!(gov.peak_resident_bytes() >= 3 * 64);
        assert!(gov.peak_resident_bytes() <= 4 * 64);
    }

    #[test]
    fn governor_budget_shared_with_exec_reservations() {
        let (p, _io) = pool(100);
        let mut gov = Governor::new(
            Budget {
                max_resident_bytes: Some(10 * 64),
                ..Budget::default()
            },
            None,
        );
        // Exec state holds most of the budget; pages squeeze into the rest.
        gov.reserve(8 * 64).unwrap();
        p.attach_governor(gov.clone_shared()).unwrap();
        for pid in 0..6u64 {
            p.get((0, pid), || Ok(vec![0u8; 64])).unwrap();
        }
        assert!(p.resident_frames() <= 2, "{}", p.resident_frames());
        p.detach_governor();
        gov.release(8 * 64);
    }

    #[test]
    fn invalidate_file_sheds_only_that_file() {
        let (p, _io) = pool(8);
        p.get((1, 0), || Ok(vec![0u8; 64])).unwrap();
        p.get((1, 1), || Ok(vec![0u8; 64])).unwrap();
        p.get((2, 0), || Ok(vec![0u8; 64])).unwrap();
        p.invalidate_file(1);
        assert_eq!(p.resident_frames(), 1);
        p.invalidate((2, 0));
        assert_eq!(p.resident_frames(), 0);
    }
}
