//! The catalog: name → table resolution, index registry, temp MVs.

use crate::{Index, IndexKind, Table, TableId, TempMv};
use parking_lot::RwLock;
use pop_types::{PopError, PopResult, Row, Schema};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    tables: HashMap<String, Arc<Table>>,
    by_id: HashMap<TableId, Arc<Table>>,
    indexes: HashMap<TableId, Vec<Arc<Index>>>,
    temp_mvs: HashMap<String, TempMv>, // keyed by signature
    next_id: TableId,
}

/// The shared catalog.
///
/// Thread-safe (`parking_lot::RwLock`) so the runtime can register and
/// clean up temp MVs while the optimizer holds a reference. Cloning is
/// cheap (`Arc` inside).
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<Inner>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("temp_mvs", &self.temp_mv_count())
            .finish_non_exhaustive()
    }
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a base table and return it.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> PopResult<Arc<Table>> {
        let name = name.into();
        let mut inner = self.inner.write();
        if inner.tables.contains_key(&name) {
            return Err(PopError::Catalog(format!("table {name} already exists")));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let table = Arc::new(Table::new(id, name.clone(), schema, rows));
        inner.tables.insert(name, table.clone());
        inner.by_id.insert(id, table.clone());
        Ok(table)
    }

    /// Drop a table (base or temp) by name.
    pub fn drop_table(&self, name: &str) -> PopResult<()> {
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .remove(name)
            .ok_or_else(|| PopError::UnknownTable(name.to_string()))?;
        inner.by_id.remove(&t.id());
        inner.indexes.remove(&t.id());
        Ok(())
    }

    /// Resolve a table by name.
    pub fn table(&self, name: &str) -> PopResult<Arc<Table>> {
        self.inner
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| PopError::UnknownTable(name.to_string()))
    }

    /// Resolve a table by id.
    pub fn table_by_id(&self, id: TableId) -> PopResult<Arc<Table>> {
        self.inner
            .read()
            .by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| PopError::UnknownTable(format!("#{id}")))
    }

    /// Names of all tables (sorted, for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Build an index on `table.column`.
    ///
    /// Indexes snapshot the table at creation time; after inserting rows,
    /// call [`Catalog::refresh_indexes`] so probes see the new data.
    pub fn create_index(&self, table: &str, column: &str, kind: IndexKind) -> PopResult<()> {
        let t = self.table(table)?;
        let col = t
            .schema()
            .index_of(column)
            .ok_or_else(|| PopError::UnknownColumn(format!("{table}.{column}")))?;
        let idx = Arc::new(Index::build(kind, col, &t.snapshot()));
        self.inner
            .write()
            .indexes
            .entry(t.id())
            .or_default()
            .push(idx);
        Ok(())
    }

    /// Rebuild every index of `table` against its current rows (after
    /// inserts made existing indexes stale).
    pub fn refresh_indexes(&self, table: &str) -> PopResult<()> {
        let t = self.table(table)?;
        let snapshot = t.snapshot();
        let mut inner = self.inner.write();
        if let Some(list) = inner.indexes.get_mut(&t.id()) {
            for idx in list.iter_mut() {
                *idx = Arc::new(Index::build(idx.kind(), idx.column(), &snapshot));
            }
        }
        Ok(())
    }

    /// All indexes on a table.
    pub fn indexes(&self, table_id: TableId) -> Vec<Arc<Index>> {
        self.inner
            .read()
            .indexes
            .get(&table_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Find an index on `column` of `table_id`, preferring `Sorted` when
    /// `need_range` is set.
    pub fn find_index(
        &self,
        table_id: TableId,
        column: usize,
        need_range: bool,
    ) -> Option<Arc<Index>> {
        let inner = self.inner.read();
        let list = inner.indexes.get(&table_id)?;
        let mut best: Option<Arc<Index>> = None;
        for idx in list {
            if idx.column() != column {
                continue;
            }
            if need_range && idx.kind() != IndexKind::Sorted {
                continue;
            }
            match (&best, idx.kind()) {
                (None, _) => best = Some(idx.clone()),
                // Prefer hash for pure equality probes.
                (Some(b), IndexKind::Hash) if !need_range && b.kind() == IndexKind::Sorted => {
                    best = Some(idx.clone());
                }
                _ => {}
            }
        }
        best
    }

    /// Register a temp MV (replacing any prior MV with the same signature —
    /// the newest materialization of a subplan wins).
    pub fn register_temp_mv(&self, mv: TempMv) {
        let mut inner = self.inner.write();
        let name = mv.table.name().to_string();
        let id = mv.table.id();
        inner.tables.insert(name, mv.table.clone());
        inner.by_id.insert(id, mv.table.clone());
        inner.temp_mvs.insert(mv.signature.clone(), mv);
    }

    /// Allocate a fresh table id for a temp MV table.
    pub fn allocate_temp_id(&self) -> TableId {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        id
    }

    /// Look up a temp MV by subplan signature.
    pub fn temp_mv(&self, signature: &str) -> Option<TempMv> {
        self.inner.read().temp_mvs.get(signature).cloned()
    }

    /// All currently registered temp MVs.
    pub fn temp_mvs(&self) -> Vec<TempMv> {
        let mut v: Vec<TempMv> = self.inner.read().temp_mvs.values().cloned().collect();
        v.sort_by(|a, b| a.signature.cmp(&b.signature));
        v
    }

    /// Remove every temp MV: the paper's post-query cleanup step ("the
    /// runtime system has to remember to remove any of these temporarily
    /// materialized views after completing query execution", §2.3).
    pub fn clear_temp_mvs(&self) {
        let mut inner = self.inner.write();
        let sigs: Vec<String> = inner.temp_mvs.keys().cloned().collect();
        for sig in sigs {
            if let Some(mv) = inner.temp_mvs.remove(&sig) {
                inner.tables.remove(mv.table.name());
                inner.by_id.remove(&mv.table.id());
                inner.indexes.remove(&mv.table.id());
            }
        }
    }

    /// Number of registered temp MVs.
    pub fn temp_mv_count(&self) -> usize {
        self.inner.read().temp_mvs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{ColId, DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)])
    }

    #[test]
    fn create_and_resolve() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        let t = cat.table("t").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(cat.table_by_id(t.id()).unwrap().name(), "t");
        assert!(cat.table("missing").is_err());
    }

    #[test]
    fn duplicate_name_rejected() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![]).unwrap();
        assert!(cat.create_table("t", schema(), vec![]).is_err());
    }

    #[test]
    fn drop_table() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![]).unwrap();
        cat.drop_table("t").unwrap();
        assert!(cat.table("t").is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn index_lifecycle() {
        let cat = Catalog::new();
        let t = cat
            .create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        cat.create_index("t", "a", IndexKind::Hash).unwrap();
        cat.create_index("t", "a", IndexKind::Sorted).unwrap();
        assert_eq!(cat.indexes(t.id()).len(), 2);
        // Equality lookup prefers hash.
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert_eq!(idx.kind(), IndexKind::Hash);
        // Range lookup requires sorted.
        let idx = cat.find_index(t.id(), 0, true).unwrap();
        assert_eq!(idx.kind(), IndexKind::Sorted);
        // No index on column 1.
        assert!(cat.find_index(t.id(), 1, false).is_none());
        // Unknown column errors.
        assert!(cat.create_index("t", "zz", IndexKind::Hash).is_err());
    }

    #[test]
    fn refresh_indexes_sees_new_rows() {
        let cat = Catalog::new();
        let t = cat
            .create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        cat.create_index("t", "a", IndexKind::Hash).unwrap();
        t.insert(vec![vec![Value::Int(2), Value::str("y")]])
            .unwrap();
        // Stale: the new row is invisible to the old index.
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert!(idx.probe(&Value::Int(2)).is_empty());
        cat.refresh_indexes("t").unwrap();
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert_eq!(idx.probe(&Value::Int(2)), &[1]);
        assert!(cat.refresh_indexes("missing").is_err());
    }

    #[test]
    fn temp_mv_registration_and_cleanup() {
        let cat = Catalog::new();
        let id = cat.allocate_temp_id();
        let table = Arc::new(Table::new(id, "__mv_0", schema(), vec![]));
        cat.register_temp_mv(TempMv {
            table,
            signature: "sig-a".into(),
            layout: vec![ColId::new(0, 0), ColId::new(0, 1)],
            actual_card: 0,
            lineage: None,
        });
        assert!(cat.temp_mv("sig-a").is_some());
        assert!(cat.temp_mv("sig-b").is_none());
        assert!(cat.table("__mv_0").is_ok());
        assert_eq!(cat.temp_mv_count(), 1);
        cat.clear_temp_mvs();
        assert_eq!(cat.temp_mv_count(), 0);
        assert!(cat.table("__mv_0").is_err());
    }

    #[test]
    fn temp_mv_same_signature_replaces() {
        let cat = Catalog::new();
        for n in 0..2 {
            let id = cat.allocate_temp_id();
            let table = Arc::new(Table::new(id, format!("__mv_{n}"), schema(), vec![]));
            cat.register_temp_mv(TempMv {
                table,
                signature: "sig".into(),
                layout: vec![],
                actual_card: n,
                lineage: None,
            });
        }
        assert_eq!(cat.temp_mv_count(), 1);
        assert_eq!(cat.temp_mv("sig").unwrap().actual_card, 1);
    }
}
