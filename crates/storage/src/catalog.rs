//! The catalog: name → table resolution, index registry, temp MVs, and
//! the shared [`StorageEnv`] (backend choice, buffer pool, I/O counters).

use crate::backend::{StorageBackend, StorageConfig, StorageEnv, StorageKind};
use crate::buffer::IoStats;
use crate::mem::MemBackend;
use crate::paged::PagedBackend;
use crate::{Index, IndexKind, Table, TableId, TempMv};
use parking_lot::RwLock;
use pop_guard::Governor;
use pop_types::{PopError, PopResult, Row, Schema};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    tables: HashMap<String, Arc<Table>>,
    by_id: HashMap<TableId, Arc<Table>>,
    indexes: HashMap<TableId, Vec<Arc<Index>>>,
    temp_mvs: HashMap<String, TempMv>, // keyed by signature
    next_id: TableId,
}

/// Rows per bulk-load chunk of [`Catalog::create_table`]: each chunk is
/// one WAL record and one append, so large loads stream to pages with
/// bounded WAL-record size instead of logging one giant batch.
pub const BULK_LOAD_CHUNK: usize = 4096;

/// The shared catalog.
///
/// Thread-safe (`parking_lot::RwLock`) so the runtime can register and
/// clean up temp MVs while the optimizer holds a reference. Cloning is
/// cheap (`Arc` inside). All tables created through one catalog share its
/// [`StorageEnv`] — one backend kind, one buffer pool, one I/O ledger.
#[derive(Clone)]
pub struct Catalog {
    inner: Arc<RwLock<Inner>>,
    env: Arc<StorageEnv>,
}

impl Default for Catalog {
    /// Honors the `POP_STORAGE` / `POP_PAGE_SIZE` / `POP_BUFFER_POOL_BYTES` /
    /// `POP_WAL` knobs, so `POP_STORAGE=paged cargo test` runs every
    /// default-constructed catalog on the paged backend. Invalid values
    /// fall back silently here; [`Catalog::from_env`] collects the
    /// warnings (and `PopConfig::default` surfaces them on the report).
    fn default() -> Self {
        Catalog::with_storage(StorageConfig::from_env(&mut Vec::new()))
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("storage", &self.env.config().kind)
            .field("tables", &self.table_names())
            .field("temp_mvs", &self.temp_mv_count())
            .finish_non_exhaustive()
    }
}

impl Catalog {
    /// Empty catalog over in-memory storage.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Empty catalog over the given storage configuration.
    pub fn with_storage(config: StorageConfig) -> Self {
        Catalog {
            inner: Arc::new(RwLock::new(Inner::default())),
            env: Arc::new(StorageEnv::new(config)),
        }
    }

    /// Empty catalog configured from `POP_STORAGE` / `POP_PAGE_SIZE` /
    /// `POP_BUFFER_POOL_BYTES` / `POP_WAL`, appending a warning per
    /// invalid value.
    pub fn from_env(warnings: &mut Vec<String>) -> Self {
        Catalog::with_storage(StorageConfig::from_env(warnings))
    }

    /// The storage environment shared by this catalog's tables.
    pub fn storage(&self) -> &Arc<StorageEnv> {
        &self.env
    }

    /// Physical I/O counters since the catalog was created (pool hits and
    /// misses, evictions, WAL records). Backend-dependent by design —
    /// never part of result or plan equivalence.
    pub fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    /// Attach the running query's governor so buffer-pool frames draw
    /// from its resident-byte budget.
    pub fn attach_governor(&self, gov: Governor) -> PopResult<()> {
        self.env.attach_governor(gov)
    }

    /// Detach the governor, releasing all page reservations.
    pub fn detach_governor(&self) {
        self.env.detach_governor();
    }

    /// Build a backend of the configured kind for table `name`.
    fn new_backend(&self, name: &str, temporary: bool) -> PopResult<Arc<dyn StorageBackend>> {
        Ok(match self.env.config().kind {
            StorageKind::Mem => Arc::new(MemBackend::new(self.env.layout())),
            StorageKind::Paged => Arc::new(PagedBackend::create(
                Arc::clone(&self.env),
                name,
                temporary,
            )?),
        })
    }

    /// Create a base table and return it. Rows stream in
    /// [`BULK_LOAD_CHUNK`]-sized appends (chunked appends produce the
    /// same page map as one append — packing is append-associative); on
    /// the paged backend each chunk is WAL-logged and the load ends with
    /// a checkpoint.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> PopResult<Arc<Table>> {
        let name = name.into();
        {
            let inner = self.inner.read();
            if inner.tables.contains_key(&name) {
                return Err(PopError::Catalog(format!("table {name} already exists")));
            }
        }
        let backend = self.new_backend(&name, false)?;
        let id = {
            let mut inner = self.inner.write();
            if inner.tables.contains_key(&name) {
                return Err(PopError::Catalog(format!("table {name} already exists")));
            }
            let id = inner.next_id;
            inner.next_id += 1;
            id
        };
        let table = Arc::new(Table::with_backend(id, name.clone(), schema, backend));
        let mut iter = rows.into_iter();
        loop {
            let chunk: Vec<Row> = iter.by_ref().take(BULK_LOAD_CHUNK).collect();
            if chunk.is_empty() {
                break;
            }
            table.insert(chunk)?;
        }
        table.checkpoint()?;
        let mut inner = self.inner.write();
        inner.tables.insert(name, table.clone());
        inner.by_id.insert(id, table.clone());
        Ok(table)
    }

    /// Create a *temporary* table (temp-MV spill target): on the paged
    /// backend its files are unlinked when the table is dropped.
    pub fn create_temp_table(
        &self,
        id: TableId,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> PopResult<Arc<Table>> {
        let name = name.into();
        let backend = self.new_backend(&name, true)?;
        let table = Arc::new(Table::with_backend(id, name, schema, backend));
        if !rows.is_empty() {
            table.insert(rows)?;
        }
        Ok(table)
    }

    /// Reopen a table whose files already exist in the storage directory
    /// (paged backend only), running WAL redo recovery. The recovered
    /// table is registered under `name`.
    pub fn open_table(&self, name: &str, schema: Schema) -> PopResult<Arc<Table>> {
        if self.env.config().kind != StorageKind::Paged {
            return Err(PopError::Catalog(
                "open_table requires the paged storage backend".into(),
            ));
        }
        {
            let inner = self.inner.read();
            if inner.tables.contains_key(name) {
                return Err(PopError::Catalog(format!("table {name} already exists")));
            }
        }
        let backend = Arc::new(PagedBackend::open(&self.env, name)?);
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        let table = Arc::new(Table::with_backend(id, name, schema, backend));
        inner.tables.insert(name.to_string(), table.clone());
        inner.by_id.insert(id, table.clone());
        Ok(table)
    }

    /// Checkpoint every registered table (paged backend: sync + WAL
    /// truncation; mem backend: no-op).
    pub fn checkpoint(&self) -> PopResult<()> {
        let tables: Vec<Arc<Table>> = self.inner.read().tables.values().cloned().collect();
        for t in tables {
            t.checkpoint()?;
        }
        Ok(())
    }

    /// Drop a table (base or temp) by name.
    pub fn drop_table(&self, name: &str) -> PopResult<()> {
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .remove(name)
            .ok_or_else(|| PopError::UnknownTable(name.to_string()))?;
        inner.by_id.remove(&t.id());
        inner.indexes.remove(&t.id());
        Ok(())
    }

    /// Resolve a table by name.
    pub fn table(&self, name: &str) -> PopResult<Arc<Table>> {
        self.inner
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| PopError::UnknownTable(name.to_string()))
    }

    /// Resolve a table by id.
    pub fn table_by_id(&self, id: TableId) -> PopResult<Arc<Table>> {
        self.inner
            .read()
            .by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| PopError::UnknownTable(format!("#{id}")))
    }

    /// Names of all tables (sorted, for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Build an index on `table.column`.
    ///
    /// On the paged backend, the first `Sorted` index of a table becomes
    /// its persistent B+tree primary index (maintained on append); any
    /// other index is an in-memory map that snapshots the table at
    /// creation time — after inserting rows, call
    /// [`Catalog::refresh_indexes`] so those see the new data.
    pub fn create_index(&self, table: &str, column: &str, kind: IndexKind) -> PopResult<()> {
        let t = self.table(table)?;
        let col = t
            .schema()
            .index_of(column)
            .ok_or_else(|| PopError::UnknownColumn(format!("{table}.{column}")))?;
        let idx = if kind == IndexKind::Sorted {
            match t
                .backend()
                .as_any()
                .downcast_ref::<PagedBackend>()
                .map(|p| p.ensure_primary(col as u32))
                .transpose()?
                .flatten()
            {
                Some(bt) => Arc::new(Index::from_btree(col, bt)),
                None => Arc::new(Index::build(kind, col, &t.snapshot())),
            }
        } else {
            Arc::new(Index::build(kind, col, &t.snapshot()))
        };
        self.inner
            .write()
            .indexes
            .entry(t.id())
            .or_default()
            .push(idx);
        Ok(())
    }

    /// Rebuild every in-memory index of `table` against its current rows
    /// (after inserts made existing indexes stale). Persistent B+tree
    /// indexes are maintained on append and skipped.
    pub fn refresh_indexes(&self, table: &str) -> PopResult<()> {
        let t = self.table(table)?;
        let snapshot = t.snapshot();
        let mut inner = self.inner.write();
        if let Some(list) = inner.indexes.get_mut(&t.id()) {
            for idx in list.iter_mut() {
                if idx.is_persistent() {
                    continue;
                }
                *idx = Arc::new(Index::build(idx.kind(), idx.column(), &snapshot));
            }
        }
        Ok(())
    }

    /// All indexes on a table.
    pub fn indexes(&self, table_id: TableId) -> Vec<Arc<Index>> {
        self.inner
            .read()
            .indexes
            .get(&table_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Find an index on `column` of `table_id`, preferring `Sorted` when
    /// `need_range` is set.
    pub fn find_index(
        &self,
        table_id: TableId,
        column: usize,
        need_range: bool,
    ) -> Option<Arc<Index>> {
        let inner = self.inner.read();
        let list = inner.indexes.get(&table_id)?;
        let mut best: Option<Arc<Index>> = None;
        for idx in list {
            if idx.column() != column {
                continue;
            }
            if need_range && idx.kind() != IndexKind::Sorted {
                continue;
            }
            match (&best, idx.kind()) {
                (None, _) => best = Some(idx.clone()),
                // Prefer hash for pure equality probes.
                (Some(b), IndexKind::Hash) if !need_range && b.kind() == IndexKind::Sorted => {
                    best = Some(idx.clone());
                }
                _ => {}
            }
        }
        best
    }

    /// Register a temp MV (replacing any prior MV with the same signature —
    /// the newest materialization of a subplan wins).
    pub fn register_temp_mv(&self, mv: TempMv) {
        let mut inner = self.inner.write();
        let name = mv.table.name().to_string();
        let id = mv.table.id();
        inner.tables.insert(name, mv.table.clone());
        inner.by_id.insert(id, mv.table.clone());
        inner.temp_mvs.insert(mv.signature.clone(), mv);
    }

    /// Allocate a fresh table id for a temp MV table.
    pub fn allocate_temp_id(&self) -> TableId {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        id
    }

    /// Look up a temp MV by subplan signature.
    pub fn temp_mv(&self, signature: &str) -> Option<TempMv> {
        self.inner.read().temp_mvs.get(signature).cloned()
    }

    /// All currently registered temp MVs.
    pub fn temp_mvs(&self) -> Vec<TempMv> {
        let mut v: Vec<TempMv> = self.inner.read().temp_mvs.values().cloned().collect();
        v.sort_by(|a, b| a.signature.cmp(&b.signature));
        v
    }

    /// Remove every temp MV: the paper's post-query cleanup step ("the
    /// runtime system has to remember to remove any of these temporarily
    /// materialized views after completing query execution", §2.3). On
    /// the paged backend, dropping the last reference to an MV table also
    /// unlinks its backing files.
    pub fn clear_temp_mvs(&self) {
        let mut inner = self.inner.write();
        let sigs: Vec<String> = inner.temp_mvs.keys().cloned().collect();
        for sig in sigs {
            if let Some(mv) = inner.temp_mvs.remove(&sig) {
                inner.tables.remove(mv.table.name());
                inner.by_id.remove(&mv.table.id());
                inner.indexes.remove(&mv.table.id());
            }
        }
    }

    /// Number of registered temp MVs.
    pub fn temp_mv_count(&self) -> usize {
        self.inner.read().temp_mvs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{ColId, DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)])
    }

    #[test]
    fn create_and_resolve() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        let t = cat.table("t").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(cat.table_by_id(t.id()).unwrap().name(), "t");
        assert!(cat.table("missing").is_err());
    }

    #[test]
    fn duplicate_name_rejected() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![]).unwrap();
        assert!(cat.create_table("t", schema(), vec![]).is_err());
    }

    #[test]
    fn drop_table() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), vec![]).unwrap();
        cat.drop_table("t").unwrap();
        assert!(cat.table("t").is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn index_lifecycle() {
        let cat = Catalog::new();
        let t = cat
            .create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        cat.create_index("t", "a", IndexKind::Hash).unwrap();
        cat.create_index("t", "a", IndexKind::Sorted).unwrap();
        assert_eq!(cat.indexes(t.id()).len(), 2);
        // Equality lookup prefers hash.
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert_eq!(idx.kind(), IndexKind::Hash);
        // Range lookup requires sorted.
        let idx = cat.find_index(t.id(), 0, true).unwrap();
        assert_eq!(idx.kind(), IndexKind::Sorted);
        // No index on column 1.
        assert!(cat.find_index(t.id(), 1, false).is_none());
        // Unknown column errors.
        assert!(cat.create_index("t", "zz", IndexKind::Hash).is_err());
    }

    #[test]
    fn refresh_indexes_sees_new_rows() {
        let cat = Catalog::new();
        let t = cat
            .create_table("t", schema(), vec![vec![Value::Int(1), Value::str("x")]])
            .unwrap();
        cat.create_index("t", "a", IndexKind::Hash).unwrap();
        t.insert(vec![vec![Value::Int(2), Value::str("y")]])
            .unwrap();
        // Stale: the new row is invisible to the old index.
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert!(idx.probe(&Value::Int(2)).unwrap().is_empty());
        cat.refresh_indexes("t").unwrap();
        let idx = cat.find_index(t.id(), 0, false).unwrap();
        assert_eq!(idx.probe(&Value::Int(2)).unwrap(), vec![1]);
        assert!(cat.refresh_indexes("missing").is_err());
    }

    #[test]
    fn temp_mv_registration_and_cleanup() {
        let cat = Catalog::new();
        let id = cat.allocate_temp_id();
        let table = Arc::new(Table::new(id, "__mv_0", schema(), vec![]));
        cat.register_temp_mv(TempMv {
            table,
            signature: "sig-a".into(),
            layout: vec![ColId::new(0, 0), ColId::new(0, 1)],
            actual_card: 0,
            lineage: None,
        });
        assert!(cat.temp_mv("sig-a").is_some());
        assert!(cat.temp_mv("sig-b").is_none());
        assert!(cat.table("__mv_0").is_ok());
        assert_eq!(cat.temp_mv_count(), 1);
        cat.clear_temp_mvs();
        assert_eq!(cat.temp_mv_count(), 0);
        assert!(cat.table("__mv_0").is_err());
    }

    #[test]
    fn temp_mv_same_signature_replaces() {
        let cat = Catalog::new();
        for n in 0..2 {
            let id = cat.allocate_temp_id();
            let table = Arc::new(Table::new(id, format!("__mv_{n}"), schema(), vec![]));
            cat.register_temp_mv(TempMv {
                table,
                signature: "sig".into(),
                layout: vec![],
                actual_card: n,
                lineage: None,
            });
        }
        assert_eq!(cat.temp_mv_count(), 1);
        assert_eq!(cat.temp_mv("sig").unwrap().actual_card, 1);
    }

    #[test]
    fn paged_catalog_persists_and_reopens_tables() {
        let dir = std::env::temp_dir().join(format!("pop-cat-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StorageConfig {
            page_size: 512,
            dir: Some(dir.clone()),
            ..StorageConfig::paged()
        };
        {
            let cat = Catalog::with_storage(config.clone());
            let t = cat
                .create_table(
                    "t",
                    schema(),
                    (0..100)
                        .map(|i| vec![Value::Int(i), Value::str(format!("r{i}"))])
                        .collect(),
                )
                .unwrap();
            assert!(t.is_paged());
            assert!(t.page_count() > 1, "100 rows exceed one 512-byte page");
        }
        let cat = Catalog::with_storage(config);
        let t = cat.open_table("t", schema()).unwrap();
        assert_eq!(t.row_count(), 100);
        assert_eq!(t.snapshot()[42][0], Value::Int(42));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_sorted_index_is_persistent_and_tracks_appends() {
        let cat = Catalog::with_storage(StorageConfig {
            page_size: 512,
            ..StorageConfig::paged()
        });
        let t = cat
            .create_table(
                "t",
                schema(),
                vec![
                    vec![Value::Int(1), Value::str("x")],
                    vec![Value::Int(2), Value::str("y")],
                ],
            )
            .unwrap();
        cat.create_index("t", "a", IndexKind::Sorted).unwrap();
        let idx = cat.find_index(t.id(), 0, true).unwrap();
        assert!(idx.is_persistent());
        // No refresh needed: the B+tree is maintained on append.
        t.insert(vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        assert_eq!(idx.probe(&Value::Int(3)).unwrap(), vec![2]);
        // A second Sorted index on another column falls back to memory.
        cat.create_index("t", "b", IndexKind::Sorted).unwrap();
        let idx_b = cat.find_index(t.id(), 1, true).unwrap();
        assert!(!idx_b.is_persistent());
    }

    #[test]
    fn temp_tables_spill_to_pages_and_unlink_on_drop() {
        let cat = Catalog::with_storage(StorageConfig {
            page_size: 512,
            ..StorageConfig::paged()
        });
        let id = cat.allocate_temp_id();
        let table = cat
            .create_temp_table(
                id,
                "__mv_spill",
                schema(),
                vec![vec![Value::Int(7), Value::str("m")]],
            )
            .unwrap();
        assert!(table.is_paged());
        let dir = cat.storage().ensure_dir().unwrap();
        assert!(dir.join("__mv_spill.dat").exists());
        cat.register_temp_mv(TempMv {
            table,
            signature: "sig".into(),
            layout: vec![ColId::new(0, 0), ColId::new(0, 1)],
            actual_card: 1,
            lineage: None,
        });
        cat.clear_temp_mvs();
        assert!(
            !dir.join("__mv_spill.dat").exists(),
            "temp MV files unlink on drop"
        );
    }
}
