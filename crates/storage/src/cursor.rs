//! Backend-neutral access paths: sequential cursors and positional
//! fetchers.
//!
//! Both backends serve the same two shapes the executor needs — "next
//! chunk of at most N rows" for scans and "the row at position P" for
//! index fetches and join probes — with identical chunk boundaries and
//! identical *logical* page-touch counts (the mem backend counts virtual
//! pages with the same packing rule the paged backend uses for real
//! ones). Only the physical behaviour differs: the mem paths are
//! zero-copy slices, the paged paths read through the buffer pool.

use crate::backend::StorageBackend;
use crate::mem::MemBackend;
use pop_types::{PopResult, Row};
use std::sync::Arc;

#[derive(Debug)]
enum CursorSrc {
    /// Zero-copy: chunks are sub-slices of the snapshot.
    Mem(Arc<Vec<Row>>),
    /// Chunks are decoded from data pages via the buffer pool.
    Paged(Arc<dyn StorageBackend>),
}

/// One chunk of a sequential scan.
#[derive(Debug)]
pub struct CursorChunk<'a> {
    /// Position of the first row of the chunk.
    pub start: u64,
    /// The rows (never empty).
    pub rows: &'a [Row],
    /// Pages this chunk touched that the cursor had not already counted
    /// — identical across backends for identical contents; multiply by
    /// the cost model's page-I/O weight to charge it.
    pub new_pages: u64,
}

/// Sequential cursor over a row range `[pos, end)` of one backend.
///
/// Chunk boundaries replicate [`crate::chunk`] exactly: each call yields
/// `min(max, remaining)` rows, so batch traces are byte-identical whether
/// the table is in memory or on pages.
#[derive(Debug)]
pub struct TableCursor {
    src: CursorSrc,
    backend: Arc<dyn StorageBackend>,
    pos: u64,
    end: u64,
    /// Last page already counted into `new_pages` (watermark).
    counted: Option<u64>,
    /// Decode scratch for the paged path, reused across chunks.
    buf: Vec<Row>,
}

impl TableCursor {
    /// Cursor over rows `[lo, hi)` (clamped to the backend's row count)
    /// of `backend`.
    pub fn over(backend: Arc<dyn StorageBackend>, lo: u64, hi: u64) -> PopResult<Self> {
        let n = backend.row_count();
        let (lo, hi) = (lo.min(n), hi.min(n));
        let src = match backend.as_any().downcast_ref::<MemBackend>() {
            Some(mem) => CursorSrc::Mem(mem.rows()),
            None => CursorSrc::Paged(Arc::clone(&backend)),
        };
        Ok(TableCursor {
            src,
            backend,
            pos: lo,
            end: hi,
            counted: None,
            buf: Vec::new(),
        })
    }

    /// Next position the cursor will read (for stride/sample callers that
    /// steer the cursor themselves).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Move the cursor to `pos` (clamped to the range end).
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos.min(self.end);
    }

    /// Rows remaining.
    pub fn remaining(&self) -> u64 {
        self.end - self.pos
    }

    /// The next chunk of at most `max` rows (`max` of 0 is treated as 1),
    /// or `None` at the end of the range.
    pub fn next_chunk(&mut self, max: usize) -> PopResult<Option<CursorChunk<'_>>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let start = self.pos;
        let take = (max.max(1) as u64).min(self.end - start);
        self.pos = start + take;

        // Logical page accounting (backend-invariant): pages covered by
        // [start, start+take), minus the watermarked page if this chunk
        // continues it.
        let first_page = self.backend.page_of_row(start);
        let last_page = self.backend.page_of_row(start + take - 1);
        let new_pages = match self.counted {
            Some(w) if w == first_page => last_page - first_page,
            _ => last_page - first_page + 1,
        };
        self.counted = Some(last_page);

        let rows: &[Row] = match &self.src {
            CursorSrc::Mem(snap) => &snap[start as usize..(start + take) as usize],
            CursorSrc::Paged(b) => {
                self.buf.clear();
                b.read_range(start, start + take, &mut self.buf)?;
                &self.buf
            }
        };
        Ok(Some(CursorChunk {
            start,
            rows,
            new_pages,
        }))
    }
}

#[derive(Debug)]
enum FetchSrc {
    Mem(Arc<Vec<Row>>),
    Paged(Arc<dyn StorageBackend>),
}

/// Positional row access for index fetches and join probes.
///
/// The mem path hands out `&Row` straight from the snapshot; the paged
/// path decodes the row from its page (through the buffer pool). Both
/// skip positions past the end of the backend — an index can briefly
/// trail the snapshot it is paired with.
#[derive(Debug)]
pub struct RowFetcher {
    src: FetchSrc,
    len: u64,
    backend: Arc<dyn StorageBackend>,
}

impl RowFetcher {
    /// A fetcher over the backend's current rows.
    pub fn over(backend: Arc<dyn StorageBackend>) -> Self {
        let len = backend.row_count();
        let src = match backend.as_any().downcast_ref::<MemBackend>() {
            Some(mem) => FetchSrc::Mem(mem.rows()),
            None => FetchSrc::Paged(Arc::clone(&backend)),
        };
        RowFetcher { src, len, backend }
    }

    /// Row count the fetcher was opened over.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the backend had no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical page of position `pos` (for random-I/O accounting).
    pub fn page_of(&self, pos: u64) -> u64 {
        self.backend.page_of_row(pos)
    }

    /// Visit the rows at `positions` in order, skipping positions past
    /// the end. The visitor returns `false` to stop early (semi-join
    /// probes stop at the first match).
    pub fn for_each(
        &self,
        positions: &[u64],
        mut visit: impl FnMut(u64, &Row) -> PopResult<bool>,
    ) -> PopResult<()> {
        match &self.src {
            FetchSrc::Mem(snap) => {
                for &p in positions {
                    if let Some(row) = snap.get(p as usize) {
                        if !visit(p, row)? {
                            return Ok(());
                        }
                    }
                }
            }
            FetchSrc::Paged(b) => {
                for &p in positions {
                    if p >= self.len {
                        continue;
                    }
                    let row = b.row_at(p)?;
                    if !visit(p, &row)? {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    /// The row at `pos`, if in range. The paged path decodes a fresh
    /// copy; prefer [`RowFetcher::for_each`] for batches.
    pub fn get(&self, pos: u64) -> PopResult<Option<Row>> {
        if pos >= self.len {
            return Ok(None);
        }
        match &self.src {
            FetchSrc::Mem(snap) => Ok(snap.get(pos as usize).cloned()),
            FetchSrc::Paged(b) => b.row_at(pos).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{StorageConfig, StorageEnv};
    use crate::paged::PagedBackend;
    use pop_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("payload {i}"))])
            .collect()
    }

    fn both_backends(n: i64) -> (Arc<dyn StorageBackend>, Arc<dyn StorageBackend>) {
        let env = Arc::new(StorageEnv::new(StorageConfig {
            page_size: 512,
            ..StorageConfig::paged()
        }));
        let mem = MemBackend::with_rows(env.layout(), rows(n)).unwrap();
        let paged = PagedBackend::create(env, "t", true).unwrap();
        paged.append(rows(n)).unwrap();
        (Arc::new(mem), Arc::new(paged))
    }

    #[test]
    fn chunk_boundaries_and_page_touches_match_across_backends() {
        let (mem, paged) = both_backends(300);
        for max in [1usize, 7, 64, 1024] {
            let mut a = TableCursor::over(Arc::clone(&mem), 0, u64::MAX).unwrap();
            let mut b = TableCursor::over(Arc::clone(&paged), 0, u64::MAX).unwrap();
            let mut total_pages = (0u64, 0u64);
            loop {
                let (ca, cb) = (a.next_chunk(max).unwrap(), b.next_chunk(max).unwrap());
                match (ca, cb) {
                    (None, None) => break,
                    (Some(ca), Some(cb)) => {
                        assert_eq!(ca.start, cb.start, "max={max}");
                        assert_eq!(ca.rows, cb.rows, "max={max} start={}", ca.start);
                        assert_eq!(ca.new_pages, cb.new_pages, "max={max} start={}", ca.start);
                        total_pages.0 += ca.new_pages;
                        total_pages.1 += cb.new_pages;
                    }
                    _ => panic!("cursor lengths diverged at max={max}"),
                }
            }
            // A full scan counts every page exactly once.
            assert_eq!(total_pages.0, mem.page_count(), "max={max}");
            assert_eq!(total_pages.1, paged.page_count(), "max={max}");
        }
    }

    #[test]
    fn partition_ranges_cover_without_double_counting_rows() {
        let (_, paged) = both_backends(100);
        let mut got = Vec::new();
        for part in 0..4u64 {
            let (lo, hi) = (part * 100 / 4, (part + 1) * 100 / 4);
            let mut c = TableCursor::over(Arc::clone(&paged), lo, hi).unwrap();
            while let Some(ch) = c.next_chunk(16).unwrap() {
                got.extend_from_slice(ch.rows);
            }
        }
        assert_eq!(got, rows(100));
    }

    #[test]
    fn fetcher_visits_and_stops_early() {
        let (mem, paged) = both_backends(50);
        for b in [mem, paged] {
            let f = RowFetcher::over(b);
            assert_eq!(f.len(), 50);
            let mut seen = Vec::new();
            f.for_each(&[3, 99, 7, 11], |p, row| {
                seen.push((p, row[0].clone()));
                Ok(seen.len() < 2) // stop after two visits
            })
            .unwrap();
            assert_eq!(
                seen,
                vec![(3, Value::Int(3)), (7, Value::Int(7))],
                "out-of-range skipped, early stop honoured"
            );
            assert_eq!(f.get(11).unwrap().unwrap()[0], Value::Int(11));
            assert!(f.get(50).unwrap().is_none());
        }
    }
}
