//! Secondary indexes over a single column.
//!
//! Index nested-loop join (the paper's "index NLJN") probes these; the
//! availability of an index on the inner join column is what makes NLJN
//! attractive to the optimizer when the outer cardinality is small — and
//! catastrophic when the outer estimate was wrong, which is exactly the
//! situation POP's CHECK on the NLJN outer guards against (Figure 2).
//!
//! Two representations share one probe interface: in-memory maps (built
//! from a snapshot, rebuilt by [`crate::Catalog::refresh_indexes`]) and
//! the paged backend's persistent [`BTree`] primary index (maintained
//! incrementally on append, read through the buffer pool). Key semantics
//! are identical: NULLs are never indexed, probes return row positions
//! in ascending order per key, range scans return keys in ascending
//! order.

use crate::btree::BTree;
use pop_types::{PopResult, Row, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// Kind of index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map: equality probes only.
    Hash,
    /// Ordered map: equality and range probes.
    Sorted,
}

#[derive(Debug)]
enum Repr {
    /// In-memory maps over a snapshot.
    Mem {
        hash: HashMap<Value, Vec<u64>>,
        sorted: BTreeMap<Value, Vec<u64>>,
        entries: u64,
    },
    /// Persistent B+tree (paged backend primary index). Always `Sorted`.
    BTree(Arc<BTree>),
}

/// A secondary index mapping a column value to the row positions holding it.
#[derive(Debug)]
pub struct Index {
    column: usize,
    kind: IndexKind,
    repr: Repr,
}

impl Index {
    /// Build an in-memory index of `kind` on `column` over the given rows.
    pub fn build(kind: IndexKind, column: usize, rows: &Arc<Vec<Row>>) -> Self {
        let mut hash = HashMap::new();
        let mut sorted = BTreeMap::new();
        let mut entries = 0u64;
        for (pos, row) in rows.iter().enumerate() {
            let v = &row[column];
            if v.is_null() {
                continue; // NULL never matches an equi-join or range probe
            }
            entries += 1;
            match kind {
                IndexKind::Hash => hash
                    .entry(v.clone())
                    .or_insert_with(Vec::new)
                    .push(pos as u64),
                IndexKind::Sorted => sorted
                    .entry(v.clone())
                    .or_insert_with(Vec::new)
                    .push(pos as u64),
            }
        }
        Index {
            column,
            kind,
            repr: Repr::Mem {
                hash,
                sorted,
                entries,
            },
        }
    }

    /// Wrap a paged backend's persistent B+tree primary index. Always
    /// `Sorted`; stays current with appends without a rebuild.
    pub fn from_btree(column: usize, btree: Arc<BTree>) -> Self {
        Index {
            column,
            kind: IndexKind::Sorted,
            repr: Repr::BTree(btree),
        }
    }

    /// True for the persistent B+tree representation (maintained on
    /// append — [`crate::Catalog::refresh_indexes`] skips it).
    pub fn is_persistent(&self) -> bool {
        matches!(self.repr, Repr::BTree(_))
    }

    /// Indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Number of indexed (non-NULL) entries.
    pub fn entries(&self) -> u64 {
        match &self.repr {
            Repr::Mem { entries, .. } => *entries,
            Repr::BTree(bt) => bt.entry_count(),
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> u64 {
        match &self.repr {
            Repr::Mem { hash, sorted, .. } => match self.kind {
                IndexKind::Hash => hash.len() as u64,
                IndexKind::Sorted => sorted.len() as u64,
            },
            Repr::BTree(bt) => bt.distinct_keys(),
        }
    }

    /// Row positions with column equal to `key` (ascending). The B+tree
    /// representation reads pages, so probes can fail with a storage
    /// error.
    pub fn probe(&self, key: &Value) -> PopResult<Vec<u64>> {
        if key.is_null() {
            return Ok(Vec::new());
        }
        match &self.repr {
            Repr::Mem { hash, sorted, .. } => Ok(match self.kind {
                IndexKind::Hash => hash.get(key).cloned().unwrap_or_default(),
                IndexKind::Sorted => sorted.get(key).cloned().unwrap_or_default(),
            }),
            Repr::BTree(bt) => bt.probe(key),
        }
    }

    /// Row positions with column in `[lo, hi]` (either bound optional),
    /// ascending by key. Only supported for sorted indexes; hash indexes
    /// return `Ok(None)`.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> PopResult<Option<Vec<u64>>> {
        match &self.repr {
            Repr::Mem { sorted, .. } => {
                if self.kind != IndexKind::Sorted {
                    return Ok(None);
                }
                let lo_b = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
                let hi_b = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
                let mut out = Vec::new();
                for (_, positions) in sorted.range((lo_b, hi_b)) {
                    out.extend_from_slice(positions);
                }
                Ok(Some(out))
            }
            Repr::BTree(bt) => bt.range(lo, hi).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Arc<Vec<Row>> {
        Arc::new(vec![
            vec![Value::Int(5), Value::str("a")],
            vec![Value::Int(3), Value::str("b")],
            vec![Value::Int(5), Value::str("c")],
            vec![Value::Null, Value::str("d")],
        ])
    }

    #[test]
    fn hash_probe() {
        let idx = Index::build(IndexKind::Hash, 0, &rows());
        assert_eq!(idx.probe(&Value::Int(5)).unwrap(), vec![0, 2]);
        assert!(idx.probe(&Value::Int(9)).unwrap().is_empty());
        assert!(idx.probe(&Value::Null).unwrap().is_empty());
        assert_eq!(idx.entries(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert!(!idx.is_persistent());
    }

    #[test]
    fn sorted_probe_and_range() {
        let idx = Index::build(IndexKind::Sorted, 0, &rows());
        assert_eq!(idx.probe(&Value::Int(3)).unwrap(), vec![1]);
        let r = idx
            .range(Some(&Value::Int(3)), Some(&Value::Int(5)))
            .unwrap()
            .unwrap();
        assert_eq!(r, vec![1, 0, 2]);
        let r = idx.range(None, Some(&Value::Int(4))).unwrap().unwrap();
        assert_eq!(r, vec![1]);
        let r = idx.range(Some(&Value::Int(4)), None).unwrap().unwrap();
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn hash_has_no_range() {
        let idx = Index::build(IndexKind::Hash, 0, &rows());
        assert!(idx.range(None, None).unwrap().is_none());
    }

    #[test]
    fn string_keys() {
        let idx = Index::build(IndexKind::Hash, 1, &rows());
        assert_eq!(idx.probe(&Value::str("c")).unwrap(), vec![2]);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn btree_repr_matches_mem_semantics() {
        use crate::backend::{StorageBackend, StorageConfig, StorageEnv};
        use crate::paged::PagedBackend;

        let env = Arc::new(StorageEnv::new(StorageConfig {
            page_size: 512,
            ..StorageConfig::paged()
        }));
        let b = PagedBackend::create(Arc::clone(&env), "t", true).unwrap();
        b.append(rows().as_ref().clone()).unwrap();
        let bt = b.ensure_primary(0).unwrap().unwrap();
        let idx = Index::from_btree(0, bt);
        assert!(idx.is_persistent());
        assert_eq!(idx.kind(), IndexKind::Sorted);
        let mem = Index::build(IndexKind::Sorted, 0, &rows());
        // NULL skipped, positions ascending, ranges by ascending key —
        // exactly the in-memory Sorted semantics.
        assert_eq!(idx.entries(), mem.entries());
        assert_eq!(idx.distinct_keys(), mem.distinct_keys());
        for key in [Value::Int(5), Value::Int(3), Value::Int(9), Value::Null] {
            assert_eq!(
                idx.probe(&key).unwrap(),
                mem.probe(&key).unwrap(),
                "{key:?}"
            );
        }
        assert_eq!(
            idx.range(Some(&Value::Int(3)), Some(&Value::Int(5)))
                .unwrap(),
            mem.range(Some(&Value::Int(3)), Some(&Value::Int(5)))
                .unwrap()
        );
    }
}
