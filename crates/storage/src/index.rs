//! Secondary indexes over a single column.
//!
//! Index nested-loop join (the paper's "index NLJN") probes these; the
//! availability of an index on the inner join column is what makes NLJN
//! attractive to the optimizer when the outer cardinality is small — and
//! catastrophic when the outer estimate was wrong, which is exactly the
//! situation POP's CHECK on the NLJN outer guards against (Figure 2).

use pop_types::{Row, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// Kind of index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map: equality probes only.
    Hash,
    /// Ordered map: equality and range probes.
    Sorted,
}

/// A secondary index mapping a column value to the row positions holding it.
#[derive(Debug)]
pub struct Index {
    column: usize,
    kind: IndexKind,
    hash: HashMap<Value, Vec<u64>>,
    sorted: BTreeMap<Value, Vec<u64>>,
    entries: u64,
}

impl Index {
    /// Build an index of `kind` on `column` over the given rows.
    pub fn build(kind: IndexKind, column: usize, rows: &Arc<Vec<Row>>) -> Self {
        let mut hash = HashMap::new();
        let mut sorted = BTreeMap::new();
        let mut entries = 0u64;
        for (pos, row) in rows.iter().enumerate() {
            let v = &row[column];
            if v.is_null() {
                continue; // NULL never matches an equi-join or range probe
            }
            entries += 1;
            match kind {
                IndexKind::Hash => hash
                    .entry(v.clone())
                    .or_insert_with(Vec::new)
                    .push(pos as u64),
                IndexKind::Sorted => sorted
                    .entry(v.clone())
                    .or_insert_with(Vec::new)
                    .push(pos as u64),
            }
        }
        Index {
            column,
            kind,
            hash,
            sorted,
            entries,
        }
    }

    /// Indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Number of indexed (non-NULL) entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> u64 {
        match self.kind {
            IndexKind::Hash => self.hash.len() as u64,
            IndexKind::Sorted => self.sorted.len() as u64,
        }
    }

    /// Row positions with column equal to `key`.
    pub fn probe(&self, key: &Value) -> &[u64] {
        if key.is_null() {
            return &[];
        }
        match self.kind {
            IndexKind::Hash => self.hash.get(key).map_or(&[], std::vec::Vec::as_slice),
            IndexKind::Sorted => self.sorted.get(key).map_or(&[], std::vec::Vec::as_slice),
        }
    }

    /// Row positions with column in `[lo, hi]` (either bound optional).
    /// Only supported for sorted indexes; hash indexes return `None`.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Option<Vec<u64>> {
        if self.kind != IndexKind::Sorted {
            return None;
        }
        let lo_b = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi_b = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let mut out = Vec::new();
        for (_, positions) in self.sorted.range((lo_b, hi_b)) {
            out.extend_from_slice(positions);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Arc<Vec<Row>> {
        Arc::new(vec![
            vec![Value::Int(5), Value::str("a")],
            vec![Value::Int(3), Value::str("b")],
            vec![Value::Int(5), Value::str("c")],
            vec![Value::Null, Value::str("d")],
        ])
    }

    #[test]
    fn hash_probe() {
        let idx = Index::build(IndexKind::Hash, 0, &rows());
        assert_eq!(idx.probe(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.probe(&Value::Int(9)), &[] as &[u64]);
        assert_eq!(idx.probe(&Value::Null), &[] as &[u64]);
        assert_eq!(idx.entries(), 3);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn sorted_probe_and_range() {
        let idx = Index::build(IndexKind::Sorted, 0, &rows());
        assert_eq!(idx.probe(&Value::Int(3)), &[1]);
        let r = idx
            .range(Some(&Value::Int(3)), Some(&Value::Int(5)))
            .unwrap();
        assert_eq!(r, vec![1, 0, 2]);
        let r = idx.range(None, Some(&Value::Int(4))).unwrap();
        assert_eq!(r, vec![1]);
        let r = idx.range(Some(&Value::Int(4)), None).unwrap();
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn hash_has_no_range() {
        let idx = Index::build(IndexKind::Hash, 0, &rows());
        assert!(idx.range(None, None).is_none());
    }

    #[test]
    fn string_keys() {
        let idx = Index::build(IndexKind::Hash, 1, &rows());
        assert_eq!(idx.probe(&Value::str("c")), &[2]);
        assert_eq!(idx.distinct_keys(), 4);
    }
}
