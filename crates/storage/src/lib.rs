//! Storage layer: tables behind pluggable backends, indexes, the catalog,
//! and temporary materialized views (temp MVs).
//!
//! Two backends implement [`StorageBackend`]: [`MemBackend`] (rows behind
//! an `Arc` snapshot plus a *virtual* page map) and [`PagedBackend`]
//! (slotted pages in a file, read through a clock-eviction [`BufferPool`],
//! fronted by a write-ahead log, optionally indexed by a [`BTree`]).
//! Both pack rows into pages with the same rule, so page counts — and
//! everything derived from them: statistics, cost estimates, plan
//! choices, logical page-touch charges — are identical across backends
//! for identical contents. Physical I/O (pool hits and misses, evictions,
//! WAL activity) is reported separately in [`IoStats`].
//!
//! Temp MVs are the mechanism POP uses to carry intermediate results across
//! a re-optimization (§2.3 of the paper): when a CHECK fails, completed
//! materializations are promoted to temp MVs whose catalog statistics hold
//! the *actual* cardinality, and the re-optimization is free to scan them
//! instead of recomputing the corresponding subplan. The runtime removes
//! them after the query completes. On the paged backend, temp MVs spill to
//! pages and their files are unlinked when the MV is dropped.

mod backend;
mod batch;
mod btree;
mod buffer;
mod catalog;
mod cursor;
mod index;
mod mem;
mod page;
mod paged;
mod pager;
mod table;
mod tempmv;
mod wal;

pub use backend::{
    StorageBackend, StorageConfig, StorageEnv, StorageKind, DEFAULT_BUFFER_POOL_BYTES,
};
pub use batch::{chunk, gather, RowChunks};
pub use btree::BTree;
pub use buffer::{BufferPool, IoStats};
pub use catalog::{Catalog, BULK_LOAD_CHUNK};
pub use cursor::{CursorChunk, RowFetcher, TableCursor};
pub use index::{Index, IndexKind};
pub use mem::MemBackend;
pub use page::{PageLayout, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
pub use paged::PagedBackend;
pub use table::{Table, TableId};
pub use tempmv::TempMv;
pub use wal::{Wal, WalRecord};
