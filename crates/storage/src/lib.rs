//! In-memory storage layer: tables, indexes, the catalog, and temporary
//! materialized views (temp MVs).
//!
//! Temp MVs are the mechanism POP uses to carry intermediate results across
//! a re-optimization (§2.3 of the paper): when a CHECK fails, completed
//! materializations are promoted to temp MVs whose catalog statistics hold
//! the *actual* cardinality, and the re-optimization is free to scan them
//! instead of recomputing the corresponding subplan. The runtime removes
//! them after the query completes.

mod batch;
mod catalog;
mod index;
mod table;
mod tempmv;

pub use batch::{chunk, gather, RowChunks};
pub use catalog::Catalog;
pub use index::{Index, IndexKind};
pub use table::{Table, TableId};
pub use tempmv::TempMv;
