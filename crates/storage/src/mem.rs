//! The in-memory backend: `Arc<Vec<Row>>` snapshots plus a *virtual*
//! page map.
//!
//! The map assigns every row to a page with the same greedy packing rule
//! the paged backend uses for real pages, so `page_count` and
//! `page_of_row` — and everything built on them: `TableStats::pages`,
//! page-aware cost estimates, the runtime's logical page-touch charges —
//! are identical across backends for identical contents. Only the bytes
//! are fictional.

use crate::backend::StorageBackend;
use crate::page::{encoded_row_len, PageLayout};
use parking_lot::RwLock;
use pop_types::{PopError, PopResult, Row};
use std::sync::Arc;

#[derive(Debug, Default)]
struct MemInner {
    rows: Arc<Vec<Row>>,
    /// Position of the first row of each virtual page.
    page_starts: Vec<u64>,
    /// Rows on the (virtual) tail page.
    tail_slots: usize,
    /// Encoded row bytes on the tail page.
    tail_bytes: usize,
}

/// In-memory table storage.
#[derive(Debug)]
pub struct MemBackend {
    layout: PageLayout,
    inner: RwLock<MemInner>,
}

impl MemBackend {
    /// An empty backend with `layout`'s (virtual) page geometry.
    pub fn new(layout: PageLayout) -> Self {
        MemBackend {
            layout,
            inner: RwLock::new(MemInner::default()),
        }
    }

    /// A backend holding `rows`. Errors if a single row exceeds the page
    /// size (the paged backend could not store it either).
    pub fn with_rows(layout: PageLayout, rows: Vec<Row>) -> PopResult<Self> {
        let b = MemBackend::new(layout);
        b.append(rows)?;
        Ok(b)
    }

    /// Zero-copy handle on the current rows (the mem fast path cursors
    /// slice into this without decoding anything).
    pub fn rows(&self) -> Arc<Vec<Row>> {
        Arc::clone(&self.inner.read().rows)
    }
}

impl StorageBackend for MemBackend {
    fn row_count(&self) -> u64 {
        self.inner.read().rows.len() as u64
    }

    fn page_count(&self) -> u64 {
        self.inner.read().page_starts.len() as u64
    }

    fn layout(&self) -> PageLayout {
        self.layout
    }

    fn append(&self, rows: Vec<Row>) -> PopResult<u64> {
        let mut inner = self.inner.write();
        let start = inner.rows.len() as u64;
        // Extend the virtual page map exactly as DataPage::push would.
        for (i, row) in rows.iter().enumerate() {
            let len = encoded_row_len(row);
            if !self.layout.row_fits_page(len) {
                return Err(PopError::Execution(format!(
                    "row of {len} encoded bytes exceeds the {}-byte page size",
                    self.layout.page_size
                )));
            }
            if inner.page_starts.is_empty()
                || !self.layout.fits(inner.tail_slots, inner.tail_bytes, len)
            {
                inner.page_starts.push(start + i as u64);
                inner.tail_slots = 0;
                inner.tail_bytes = 0;
            }
            inner.tail_slots += 1;
            inner.tail_bytes += len;
        }
        Arc::make_mut(&mut inner.rows).extend(rows);
        Ok(start)
    }

    fn snapshot(&self) -> PopResult<Arc<Vec<Row>>> {
        Ok(self.rows())
    }

    fn read_range(&self, lo: u64, hi: u64, out: &mut Vec<Row>) -> PopResult<()> {
        let inner = self.inner.read();
        let n = inner.rows.len() as u64;
        let (lo, hi) = (lo.min(n) as usize, hi.min(n) as usize);
        out.extend_from_slice(&inner.rows[lo..hi]);
        Ok(())
    }

    fn row_at(&self, pos: u64) -> PopResult<Row> {
        let inner = self.inner.read();
        inner.rows.get(pos as usize).cloned().ok_or_else(|| {
            PopError::Execution(format!(
                "row {pos} out of range ({} rows)",
                inner.rows.len()
            ))
        })
    }

    fn page_of_row(&self, pos: u64) -> u64 {
        let inner = self.inner.read();
        // Last page whose first row is <= pos.
        (inner.page_starts.partition_point(|&s| s <= pos).max(1) - 1) as u64
    }

    fn is_paged(&self) -> bool {
        false
    }

    fn checkpoint(&self) -> PopResult<()> {
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DataPage;
    use pop_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("payload {i}"))])
            .collect()
    }

    #[test]
    fn virtual_map_matches_real_page_builder() {
        let layout = PageLayout::new(512);
        let mem = MemBackend::with_rows(layout, rows(500)).unwrap();
        // Pack the same rows into real pages and compare the map.
        let mut starts = Vec::new();
        let mut page: Option<DataPage> = None;
        for (i, row) in rows(500).iter().enumerate() {
            let full = match page.as_mut() {
                None => true,
                Some(p) => !p.push(row).unwrap(),
            };
            if full {
                let mut p = DataPage::new(layout, i as u64);
                assert!(p.push(row).unwrap());
                page = Some(p);
                starts.push(i as u64);
            }
        }
        assert_eq!(mem.page_count(), starts.len() as u64);
        for (p, &s) in starts.iter().enumerate() {
            assert_eq!(mem.page_of_row(s), p as u64, "first row of page {p}");
            if p + 1 < starts.len() {
                assert_eq!(mem.page_of_row(starts[p + 1] - 1), p as u64);
            }
        }
    }

    #[test]
    fn incremental_append_equals_bulk_map() {
        let layout = PageLayout::new(512);
        let bulk = MemBackend::with_rows(layout, rows(300)).unwrap();
        let inc = MemBackend::new(layout);
        for chunk in rows(300).chunks(7) {
            inc.append(chunk.to_vec()).unwrap();
        }
        assert_eq!(bulk.page_count(), inc.page_count());
        for pos in 0..300u64 {
            assert_eq!(bulk.page_of_row(pos), inc.page_of_row(pos), "row {pos}");
        }
    }

    #[test]
    fn read_range_and_row_at() {
        let mem = MemBackend::with_rows(PageLayout::default(), rows(20)).unwrap();
        let mut out = Vec::new();
        mem.read_range(5, 9, &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0][0], Value::Int(5));
        assert_eq!(mem.row_at(19).unwrap()[0], Value::Int(19));
        assert!(mem.row_at(20).is_err());
    }

    #[test]
    fn oversized_row_rejected() {
        let mem = MemBackend::new(PageLayout::new(512));
        let err = mem
            .append(vec![vec![Value::str("x".repeat(2000))]])
            .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }
}
