//! Slotted pages and the row codec.
//!
//! Both backends speak the same page geometry: the [`PageLayout`] packing
//! function decides which rows share a page, and [`MemBackend`] keeps a
//! *virtual* page map computed with exactly this function while
//! [`PagedBackend`] materializes the bytes. Page counts — and therefore
//! the optimizer's page-aware cost estimates and the runtime's page-I/O
//! work charges — are a deterministic property of table contents alone,
//! which is what keeps plans, validity ranges and certificates identical
//! across backends.
//!
//! [`MemBackend`]: crate::MemBackend
//! [`PagedBackend`]: crate::PagedBackend
//!
//! Data page layout (fixed `page_size` bytes):
//!
//! ```text
//! [0]        tag (1 = data page)
//! [1..3]     n_slots  (u16 LE)
//! [3..11]    first_row (u64 LE): table position of slot 0
//! [11..]     encoded rows, packed front to back
//! [.. end]   slot directory, packed back to front: slot i's row offset
//!            (u16 LE, relative to page start) lives at
//!            page_size - 2*(i+1)
//! ```

use pop_types::{PopError, PopResult, Row, Value};
use std::sync::Arc;

/// Bytes of fixed page header before row data.
pub const PAGE_HDR: usize = 11;
/// Data-page tag byte.
pub const TAG_DATA: u8 = 1;
/// Smallest page size the configuration accepts.
pub const MIN_PAGE_SIZE: usize = 512;
/// Largest page size the configuration accepts (slot offsets are u16).
pub const MAX_PAGE_SIZE: usize = 1 << 16;
/// Default page size.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Value tags of the row codec.
const V_NULL: u8 = 0;
const V_INT: u8 = 1;
const V_FLOAT: u8 = 2;
const V_STR: u8 = 3;
const V_DATE: u8 = 4;
const V_BOOL: u8 = 5;

/// Encoded size of one value in bytes (tag byte included).
fn value_len(v: &Value) -> usize {
    1 + match v {
        Value::Null => 0,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Date(_) => 4,
        Value::Bool(_) => 1,
    }
}

/// Encoded size of one row in bytes.
pub fn encoded_row_len(row: &[Value]) -> usize {
    2 + row.iter().map(value_len).sum::<usize>()
}

/// Append the encoding of `row` to `out`.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(V_NULL),
            Value::Int(i) => {
                out.push(V_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(V_FLOAT);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(V_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(V_DATE);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(V_BOOL);
                out.push(u8::from(*b));
            }
        }
    }
}

fn short(what: &str) -> PopError {
    PopError::Execution(format!("page codec: truncated {what}"))
}

fn take<'a>(buf: &'a [u8], at: &mut usize, n: usize, what: &str) -> PopResult<&'a [u8]> {
    let s = buf.get(*at..*at + n).ok_or_else(|| short(what))?;
    *at += n;
    Ok(s)
}

/// Decode one row starting at `*at`; advances `*at` past it.
pub fn decode_row(buf: &[u8], at: &mut usize) -> PopResult<Row> {
    let n = u16::from_le_bytes(take(buf, at, 2, "row header")?.try_into().unwrap());
    let mut row = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let tag = take(buf, at, 1, "value tag")?[0];
        let v = match tag {
            V_NULL => Value::Null,
            V_INT => Value::Int(i64::from_le_bytes(
                take(buf, at, 8, "int")?.try_into().unwrap(),
            )),
            V_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(
                take(buf, at, 8, "float")?.try_into().unwrap(),
            ))),
            V_STR => {
                let len = u32::from_le_bytes(take(buf, at, 4, "str len")?.try_into().unwrap());
                let bytes = take(buf, at, len as usize, "str bytes")?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| PopError::Execution("page codec: invalid utf8".into()))?;
                Value::Str(Arc::from(s))
            }
            V_DATE => Value::Date(i32::from_le_bytes(
                take(buf, at, 4, "date")?.try_into().unwrap(),
            )),
            V_BOOL => Value::Bool(take(buf, at, 1, "bool")?[0] != 0),
            t => {
                return Err(PopError::Execution(format!(
                    "page codec: unknown value tag {t}"
                )))
            }
        };
        row.push(v);
    }
    Ok(row)
}

/// The deterministic greedy packing rule both backends share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    /// Page size in bytes.
    pub page_size: usize,
}

impl Default for PageLayout {
    fn default() -> Self {
        PageLayout {
            page_size: DEFAULT_PAGE_SIZE,
        }
    }
}

impl PageLayout {
    /// Layout for `page_size`-byte pages.
    pub fn new(page_size: usize) -> Self {
        PageLayout { page_size }
    }

    /// Can a page already holding `slots` rows and `data_bytes` of row data
    /// accept another row of `row_len` encoded bytes? The first row of an
    /// empty page always "fits" — oversized rows are rejected at append
    /// time instead, so both backends agree on the page map.
    pub fn fits(&self, slots: usize, data_bytes: usize, row_len: usize) -> bool {
        if slots == 0 {
            return true;
        }
        PAGE_HDR + data_bytes + row_len + 2 * (slots + 1) <= self.page_size
    }

    /// Does a single row of `row_len` encoded bytes fit a page at all?
    pub fn row_fits_page(&self, row_len: usize) -> bool {
        PAGE_HDR + row_len + 2 <= self.page_size
    }
}

/// An in-memory data page being filled (or decoded).
#[derive(Debug, Clone)]
pub struct DataPage {
    layout: PageLayout,
    first_row: u64,
    /// Encoded rows, front-packed (no header).
    data: Vec<u8>,
    /// Row offsets relative to the start of `data`.
    slots: Vec<u16>,
}

impl DataPage {
    /// An empty page whose slot 0 will hold table position `first_row`.
    pub fn new(layout: PageLayout, first_row: u64) -> Self {
        DataPage {
            layout,
            first_row,
            data: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Table position of slot 0.
    pub fn first_row(&self) -> u64 {
        self.first_row
    }

    /// Number of rows on the page.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Try to append `row`; false when the page is full (per the shared
    /// packing rule). Errors only when a single row exceeds the page.
    pub fn push(&mut self, row: &Row) -> PopResult<bool> {
        let len = encoded_row_len(row);
        if !self.layout.row_fits_page(len) {
            return Err(PopError::Execution(format!(
                "row of {len} encoded bytes exceeds the {}-byte page size",
                self.layout.page_size
            )));
        }
        if !self.layout.fits(self.slots.len(), self.data.len(), len) {
            return Ok(false);
        }
        self.slots.push(self.data.len() as u16);
        encode_row(row, &mut self.data);
        Ok(true)
    }

    /// Serialize to exactly `page_size` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ps = self.layout.page_size;
        let mut buf = vec![0u8; ps];
        buf[0] = TAG_DATA;
        buf[1..3].copy_from_slice(&(self.slots.len() as u16).to_le_bytes());
        buf[3..11].copy_from_slice(&self.first_row.to_le_bytes());
        buf[PAGE_HDR..PAGE_HDR + self.data.len()].copy_from_slice(&self.data);
        for (i, off) in self.slots.iter().enumerate() {
            let at = ps - 2 * (i + 1);
            buf[at..at + 2].copy_from_slice(&(off + PAGE_HDR as u16).to_le_bytes());
        }
        buf
    }

    /// Parse a serialized page back into a builder (used when re-opening
    /// the tail page for further appends).
    pub fn from_bytes(layout: PageLayout, bytes: &[u8]) -> PopResult<Self> {
        let (n, first_row) = page_header(bytes)?;
        let mut page = DataPage::new(layout, first_row);
        for i in 0..n {
            let row = page_row(bytes, i)?;
            page.slots.push(page.data.len() as u16);
            encode_row(&row, &mut page.data);
        }
        Ok(page)
    }
}

/// Parse a data page header: `(n_slots, first_row)`.
pub fn page_header(bytes: &[u8]) -> PopResult<(usize, u64)> {
    if bytes.len() < PAGE_HDR || bytes[0] != TAG_DATA {
        return Err(PopError::Execution("not a data page".into()));
    }
    let n = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
    let first = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
    Ok((n, first))
}

/// Decode row in slot `i` of a serialized data page.
pub fn page_row(bytes: &[u8], i: usize) -> PopResult<Row> {
    let (n, _) = page_header(bytes)?;
    if i >= n {
        return Err(PopError::Execution(format!(
            "slot {i} out of range ({n} slots)"
        )));
    }
    let at = bytes.len() - 2 * (i + 1);
    let off = u16::from_le_bytes(
        bytes
            .get(at..at + 2)
            .ok_or_else(|| short("slot directory"))?
            .try_into()
            .unwrap(),
    ) as usize;
    decode_row(bytes, &mut { off })
}

/// Decode all rows of a serialized data page whose slot index lies in
/// `[lo_slot, hi_slot)`, appending to `out`.
pub fn page_rows_range(
    bytes: &[u8],
    lo_slot: usize,
    hi_slot: usize,
    out: &mut Vec<Row>,
) -> PopResult<()> {
    let (n, _) = page_header(bytes)?;
    for i in lo_slot..hi_slot.min(n) {
        out.push(page_row(bytes, i)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        vec![
            Value::Int(42),
            Value::str("hello"),
            Value::Float(1.5),
            Value::Date(7300),
            Value::Bool(true),
            Value::Null,
        ]
    }

    #[test]
    fn row_round_trip() {
        let row = sample_row();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), encoded_row_len(&row));
        let mut at = 0;
        let back = decode_row(&buf, &mut at).unwrap();
        assert_eq!(at, buf.len());
        assert_eq!(row, back);
    }

    #[test]
    fn truncated_row_errors() {
        let mut buf = Vec::new();
        encode_row(&sample_row(), &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_row(&buf, &mut 0).is_err());
    }

    #[test]
    fn page_round_trip_and_slots() {
        let layout = PageLayout::new(512);
        let mut page = DataPage::new(layout, 100);
        let mut n = 0u64;
        while page
            .push(&vec![Value::Int(n as i64), Value::str(format!("row-{n}"))])
            .unwrap()
        {
            n += 1;
        }
        assert!(n > 2, "512-byte page should hold a few rows, held {n}");
        let bytes = page.to_bytes();
        assert_eq!(bytes.len(), 512);
        let (slots, first) = page_header(&bytes).unwrap();
        assert_eq!(slots as u64, n);
        assert_eq!(first, 100);
        for i in 0..slots {
            let row = page_row(&bytes, i).unwrap();
            assert_eq!(row[0], Value::Int(i as i64));
        }
        let reparsed = DataPage::from_bytes(layout, &bytes).unwrap();
        assert_eq!(reparsed.len(), slots);
        assert_eq!(reparsed.to_bytes(), bytes);
    }

    #[test]
    fn oversized_row_rejected() {
        let mut page = DataPage::new(PageLayout::new(512), 0);
        let big = vec![Value::str("x".repeat(1000))];
        assert!(page.push(&big).is_err());
    }

    #[test]
    fn packing_rule_matches_page_builder() {
        // The virtual map (fits) and the real page (push) must agree.
        let layout = PageLayout::new(512);
        let mut page = DataPage::new(layout, 0);
        let (mut slots, mut bytes) = (0usize, 0usize);
        for i in 0..200i64 {
            let row = vec![Value::Int(i), Value::str(format!("payload {i}"))];
            let len = encoded_row_len(&row);
            let virt_fits = layout.fits(slots, bytes, len);
            let real_fits = page.push(&row).unwrap();
            assert_eq!(virt_fits, real_fits, "row {i}");
            if real_fits {
                slots += 1;
                bytes += len;
            } else {
                page = DataPage::new(layout, i as u64);
                assert!(page.push(&row).unwrap());
                slots = 1;
                bytes = len;
            }
        }
    }
}
