//! The paged backend: slotted data pages behind the buffer pool, a WAL
//! in front of every append, and an optional B+tree primary index.
//!
//! Files per table (in the environment's directory):
//!
//! * `<name>.dat` — page 0 is table meta (magic, page size, checkpointed
//!   row count, primary key column), data pages follow;
//! * `<name>.wal` — redo records for rows appended since the last
//!   checkpoint (absent when the WAL is disabled);
//! * `<name>.idx` — the B+tree primary index, once one is created.
//!
//! Append protocol: WAL first (flushed), then data pages, then the
//! B+tree. [`PagedBackend::open`] recovers: it trusts pages only up to
//! the checkpointed row count, replays intact WAL records past it, and
//! rebuilds the B+tree — so a torn write anywhere past the checkpoint
//! loses nothing that reached the log. Temporary backends (spilled temp
//! MVs) unlink their files on drop.

use crate::backend::{StorageBackend, StorageEnv};
use crate::btree::BTree;
use crate::page::{page_header, page_rows_range, DataPage, PageLayout};
use crate::pager::PageFile;
use crate::wal::Wal;
use parking_lot::Mutex;
use pop_types::{PopError, PopResult, Row, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Magic number of the table meta page (`"POPD"`).
const META_MAGIC: u32 = 0x504F_5044;
/// Meta-page format version.
const META_VERSION: u16 = 1;
/// Sentinel for "no primary key column".
const NO_KEY_COL: u32 = u32::MAX;

#[derive(Debug)]
struct PagedCore {
    data: PageFile,
    wal: Option<Wal>,
    /// The (possibly partial) page being filled; always also on disk.
    tail: DataPage,
    /// Pid the tail page occupies.
    tail_pid: u64,
    /// Position of the first row of each data page (mirrors the mem
    /// backend's virtual map — same packing rule, same counts).
    page_starts: Vec<u64>,
    n_rows: u64,
    /// Rows covered by the last checkpoint (meta page).
    durable_rows: u64,
    key_col: Option<u32>,
    btree: Option<Arc<BTree>>,
}

/// On-disk table storage.
#[derive(Debug)]
pub struct PagedBackend {
    env: Arc<StorageEnv>,
    name: String,
    file_id: u64,
    /// Temporary backends (temp-MV spill) unlink their files on drop.
    temporary: bool,
    inner: Mutex<PagedCore>,
}

impl PagedBackend {
    fn dat_path(env: &StorageEnv, name: &str) -> PopResult<PathBuf> {
        Ok(env.ensure_dir()?.join(format!("{name}.dat")))
    }

    fn wal_path(env: &StorageEnv, name: &str) -> PopResult<PathBuf> {
        Ok(env.ensure_dir()?.join(format!("{name}.wal")))
    }

    fn idx_path(env: &StorageEnv, name: &str) -> PopResult<PathBuf> {
        Ok(env.ensure_dir()?.join(format!("{name}.idx")))
    }

    /// Create a fresh (empty) backend, truncating any prior files of the
    /// same name.
    pub fn create(env: Arc<StorageEnv>, name: &str, temporary: bool) -> PopResult<Self> {
        for p in [
            Self::dat_path(&env, name)?,
            Self::wal_path(&env, name)?,
            Self::idx_path(&env, name)?,
        ] {
            let _ = std::fs::remove_file(p);
        }
        let layout = env.layout();
        let data = PageFile::open(Self::dat_path(&env, name)?, layout.page_size)?;
        let wal = if env.config().wal {
            Some(Wal::open(Self::wal_path(&env, name)?)?)
        } else {
            None
        };
        let file_id = env.alloc_file_id();
        let backend = PagedBackend {
            env,
            name: name.to_string(),
            file_id,
            temporary,
            inner: Mutex::new(PagedCore {
                data,
                wal,
                tail: DataPage::new(layout, 0),
                tail_pid: 1,
                page_starts: Vec::new(),
                n_rows: 0,
                durable_rows: 0,
                key_col: None,
                btree: None,
            }),
        };
        backend.inner.lock().write_meta_page(&backend)?;
        Ok(backend)
    }

    /// Reopen an existing table with redo recovery: trust pages up to the
    /// checkpointed row count, replay intact WAL records past it, rebuild
    /// the B+tree if a primary key column was set, then checkpoint.
    pub fn open(env: &Arc<StorageEnv>, name: &str) -> PopResult<Self> {
        let layout = env.layout();
        let mut data = PageFile::open(Self::dat_path(env, name)?, layout.page_size)?;
        let meta = data.read_page(0, None)?;
        let magic = u32::from_le_bytes(meta[0..4].try_into().unwrap());
        let version = u16::from_le_bytes(meta[4..6].try_into().unwrap());
        let page_size = u32::from_le_bytes(meta[6..10].try_into().unwrap()) as usize;
        if magic != META_MAGIC || version != META_VERSION {
            return Err(PopError::Execution(format!(
                "storage: {name}.dat is not a POP table file"
            )));
        }
        if page_size != layout.page_size {
            return Err(PopError::Execution(format!(
                "storage: {name}.dat has page size {page_size}, configured {}",
                layout.page_size
            )));
        }
        let durable_rows = u64::from_le_bytes(meta[10..18].try_into().unwrap());
        let key_col_raw = u32::from_le_bytes(meta[18..22].try_into().unwrap());
        let key_col = (key_col_raw != NO_KEY_COL).then_some(key_col_raw);

        // Rebuild the page map from page headers, up to the checkpoint.
        let mut page_starts = Vec::new();
        let mut rows_seen = 0u64;
        let mut tail = DataPage::new(layout, 0);
        let mut tail_pid = 1;
        for pid in 1..data.page_count() {
            if rows_seen >= durable_rows {
                break;
            }
            let bytes = data.read_page(pid, None)?;
            let Ok((slots, first)) = page_header(&bytes) else {
                break; // torn page past the durable prefix
            };
            if first != rows_seen || slots == 0 {
                break;
            }
            let keep = (durable_rows - rows_seen).min(slots as u64) as usize;
            let mut rows = Vec::with_capacity(keep);
            if page_rows_range(&bytes, 0, keep, &mut rows).is_err() {
                break;
            }
            page_starts.push(first);
            if keep == slots {
                tail = DataPage::from_bytes(layout, &bytes)?;
            } else {
                // Checkpoint landed mid-page: keep only the durable prefix.
                tail = DataPage::new(layout, first);
                for row in &rows {
                    if !tail.push(row)? {
                        return Err(PopError::Execution(format!(
                            "storage: {name}.dat page {pid} violates the packing rule"
                        )));
                    }
                }
            }
            if tail.first_row() != first || tail.len() != keep {
                return Err(PopError::Execution(format!(
                    "storage: {name}.dat page {pid} decoded inconsistently"
                )));
            }
            tail_pid = pid;
            rows_seen += keep as u64;
        }
        if rows_seen < durable_rows {
            return Err(PopError::Execution(format!(
                "storage: {name}.dat holds {rows_seen} durable rows, meta claims {durable_rows}"
            )));
        }
        if tail.is_empty() {
            tail_pid = 1;
        }

        let wal = if env.config().wal {
            Some(Wal::open(Self::wal_path(env, name)?)?)
        } else {
            None
        };
        let file_id = env.alloc_file_id();
        let backend = PagedBackend {
            env: Arc::clone(env),
            name: name.to_string(),
            file_id,
            temporary: false,
            inner: Mutex::new(PagedCore {
                data,
                wal,
                tail,
                tail_pid,
                page_starts,
                n_rows: durable_rows,
                durable_rows,
                key_col,
                btree: None,
            }),
        };

        // Redo: replay intact WAL records past the checkpoint, in order.
        let records = Wal::replay(&Self::wal_path(env, name)?)?;
        {
            let mut core = backend.inner.lock();
            for rec in records {
                if rec.start_row < core.n_rows {
                    continue; // already durable
                }
                if rec.start_row > core.n_rows {
                    break; // gap: everything after is unusable
                }
                env.io().wal_replayed.fetch_add(1, Ordering::Relaxed);
                core.apply(&backend, &rec.rows, rec.start_row)?;
            }
            // Rebuild the primary index from the recovered pages.
            if let Some(col) = core.key_col {
                let map = core.key_map(&backend, col)?;
                core.btree = Some(Arc::new(BTree::create(
                    Arc::clone(env),
                    Self::idx_path(env, name)?,
                    &map,
                )?));
            }
            core.checkpoint(&backend)?;
        }
        Ok(backend)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary B+tree, building it over `col` on first call. A
    /// second call for a different column yields `None` (one primary per
    /// table; further indexes stay in memory).
    pub fn ensure_primary(&self, col: u32) -> PopResult<Option<Arc<BTree>>> {
        let mut core = self.inner.lock();
        match core.key_col {
            Some(c) if c == col => Ok(core.btree.clone()),
            Some(_) => Ok(None),
            None => {
                let map = core.key_map(self, col)?;
                let bt = Arc::new(BTree::create(
                    Arc::clone(&self.env),
                    Self::idx_path(&self.env, &self.name)?,
                    &map,
                )?);
                core.key_col = Some(col);
                core.btree = Some(Arc::clone(&bt));
                core.write_meta_page(self)?;
                Ok(Some(bt))
            }
        }
    }
}

impl PagedCore {
    /// Write the meta page (checkpointed row count + key column).
    fn write_meta_page(&mut self, b: &PagedBackend) -> PopResult<()> {
        let ps = b.env.config().page_size;
        let mut buf = vec![0u8; ps];
        buf[0..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&META_VERSION.to_le_bytes());
        buf[6..10].copy_from_slice(&(ps as u32).to_le_bytes());
        buf[10..18].copy_from_slice(&self.durable_rows.to_le_bytes());
        buf[18..22].copy_from_slice(&self.key_col.unwrap_or(NO_KEY_COL).to_le_bytes());
        self.data.write_page(0, &buf)?;
        b.env.pool().invalidate((b.file_id, 0));
        Ok(())
    }

    /// Write one data page and drop any stale pool frame.
    fn write_data_page(&mut self, b: &PagedBackend, pid: u64, bytes: &[u8]) -> PopResult<()> {
        self.data.write_page(pid, bytes)?;
        b.env.io().pages_written.fetch_add(1, Ordering::Relaxed);
        b.env.pool().invalidate((b.file_id, pid));
        Ok(())
    }

    /// Read one data page through the buffer pool.
    fn read_data_page(&mut self, b: &PagedBackend, pid: u64) -> PopResult<Arc<Vec<u8>>> {
        let env = &b.env;
        let file = &mut self.data;
        env.pool().get((b.file_id, pid), || {
            let trunc = env.fault_short_read();
            env.io().pages_read.fetch_add(1, Ordering::Relaxed);
            file.read_page(pid, trunc)
        })
    }

    /// Pack `rows` (starting at position `start`) into pages, persisting
    /// full pages and the (partial) tail.
    fn apply(&mut self, b: &PagedBackend, rows: &[Row], start: u64) -> PopResult<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let layout = b.env.layout();
        for (i, row) in rows.iter().enumerate() {
            let pos = start + i as u64;
            let was_empty = self.tail.is_empty();
            if was_empty {
                self.tail = DataPage::new(layout, pos);
            }
            if self.tail.push(row)? {
                if was_empty {
                    self.page_starts.push(pos);
                }
            } else {
                let bytes = self.tail.to_bytes();
                let pid = self.tail_pid;
                self.write_data_page(b, pid, &bytes)?;
                self.tail_pid += 1;
                self.tail = DataPage::new(layout, pos);
                if !self.tail.push(row)? {
                    return Err(PopError::Execution(
                        "storage: row rejected by an empty page".into(),
                    ));
                }
                self.page_starts.push(pos);
            }
        }
        let bytes = self.tail.to_bytes();
        let pid = self.tail_pid;
        self.write_data_page(b, pid, &bytes)?;
        self.n_rows = start + rows.len() as u64;
        Ok(())
    }

    /// Append rows in `[lo, hi)` to `out` by walking the covering pages.
    fn read_range(
        &mut self,
        b: &PagedBackend,
        lo: u64,
        hi: u64,
        out: &mut Vec<Row>,
    ) -> PopResult<()> {
        let n = self.n_rows;
        let (lo, hi) = (lo.min(n), hi.min(n));
        if lo >= hi {
            return Ok(());
        }
        let p_lo = self.page_of(lo);
        let p_hi = self.page_of(hi - 1);
        for p in p_lo..=p_hi {
            let first = self.page_starts[p as usize];
            let pid = p + 1; // data pages start at pid 1
            let bytes = self.read_data_page(b, pid)?;
            let lo_slot = lo.saturating_sub(first) as usize;
            let hi_slot = (hi - first) as usize;
            page_rows_range(&bytes, lo_slot, hi_slot, out)?;
        }
        Ok(())
    }

    /// Logical page index of row `pos`.
    fn page_of(&self, pos: u64) -> u64 {
        (self.page_starts.partition_point(|&s| s <= pos).max(1) - 1) as u64
    }

    /// Full key→positions map of column `col` (NULLs skipped).
    fn key_map(&mut self, b: &PagedBackend, col: u32) -> PopResult<BTreeMap<Value, Vec<u64>>> {
        let mut rows = Vec::new();
        self.read_range(b, 0, self.n_rows, &mut rows)?;
        let mut map: BTreeMap<Value, Vec<u64>> = BTreeMap::new();
        for (pos, row) in rows.iter().enumerate() {
            let key = row.get(col as usize).ok_or_else(|| {
                PopError::Execution(format!("storage: key column {col} out of range"))
            })?;
            if !matches!(key, Value::Null) {
                map.entry(key.clone()).or_default().push(pos as u64);
            }
        }
        Ok(map)
    }

    /// Make everything durable: sync data, persist the meta page, and
    /// truncate the WAL.
    fn checkpoint(&mut self, b: &PagedBackend) -> PopResult<()> {
        self.data.sync()?;
        self.durable_rows = self.n_rows;
        self.write_meta_page(b)?;
        self.data.sync()?;
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate()?;
        }
        Ok(())
    }
}

impl StorageBackend for PagedBackend {
    fn row_count(&self) -> u64 {
        self.inner.lock().n_rows
    }

    fn page_count(&self) -> u64 {
        self.inner.lock().page_starts.len() as u64
    }

    fn layout(&self) -> PageLayout {
        self.env.layout()
    }

    fn append(&self, rows: Vec<Row>) -> PopResult<u64> {
        let mut core = self.inner.lock();
        let start = core.n_rows;
        if let Some(wal) = core.wal.as_mut() {
            let torn = self.env.fault_torn_write();
            let bytes = wal.append(start, &rows, torn)?;
            let io = self.env.io();
            io.wal_records.fetch_add(1, Ordering::Relaxed);
            io.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        core.apply(self, &rows, start)?;
        if let Some(col) = core.key_col {
            let mut add: BTreeMap<Value, Vec<u64>> = BTreeMap::new();
            for (i, row) in rows.iter().enumerate() {
                if let Some(key) = row.get(col as usize) {
                    if !matches!(key, Value::Null) {
                        add.entry(key.clone()).or_default().push(start + i as u64);
                    }
                }
            }
            if let Some(bt) = core.btree.clone() {
                bt.insert(&add)?;
            }
        }
        Ok(start)
    }

    fn snapshot(&self) -> PopResult<Arc<Vec<Row>>> {
        let mut core = self.inner.lock();
        let n = core.n_rows;
        let mut rows = Vec::with_capacity(n as usize);
        core.read_range(self, 0, n, &mut rows)?;
        Ok(Arc::new(rows))
    }

    fn read_range(&self, lo: u64, hi: u64, out: &mut Vec<Row>) -> PopResult<()> {
        self.inner.lock().read_range(self, lo, hi, out)
    }

    fn row_at(&self, pos: u64) -> PopResult<Row> {
        let mut core = self.inner.lock();
        if pos >= core.n_rows {
            return Err(PopError::Execution(format!(
                "row {pos} out of range ({} rows)",
                core.n_rows
            )));
        }
        let p = core.page_of(pos);
        let first = core.page_starts[p as usize];
        let bytes = core.read_data_page(self, p + 1)?;
        crate::page::page_row(&bytes, (pos - first) as usize)
    }

    fn page_of_row(&self, pos: u64) -> u64 {
        self.inner.lock().page_of(pos)
    }

    fn is_paged(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> PopResult<()> {
        self.inner.lock().checkpoint(self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Drop for PagedBackend {
    fn drop(&mut self) {
        self.env.pool().invalidate_file(self.file_id);
        if self.temporary {
            let core = self.inner.get_mut();
            if let Some(bt) = &core.btree {
                bt.unlink();
            }
            let _ = std::fs::remove_file(core.data.path());
            if let Some(wal) = &core.wal {
                let _ = std::fs::remove_file(wal.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageConfig;
    use crate::mem::MemBackend;
    use pop_guard::{FaultInjector, FaultPlan};

    fn env_with(page_size: usize, dir: Option<PathBuf>) -> Arc<StorageEnv> {
        Arc::new(StorageEnv::new(StorageConfig {
            page_size,
            dir,
            ..StorageConfig::paged()
        }))
    }

    fn rows(lo: i64, hi: i64) -> Vec<Row> {
        (lo..hi)
            .map(|i| vec![Value::Int(i), Value::str(format!("payload {i}"))])
            .collect()
    }

    #[test]
    fn append_read_round_trip_and_page_parity_with_mem() {
        let env = env_with(512, None);
        let paged = PagedBackend::create(Arc::clone(&env), "t", false).unwrap();
        let mem = MemBackend::new(env.layout());
        for chunk in rows(0, 400).chunks(37) {
            paged.append(chunk.to_vec()).unwrap();
            mem.append(chunk.to_vec()).unwrap();
        }
        assert_eq!(paged.row_count(), 400);
        // Page map identical to the mem backend's virtual map.
        assert_eq!(paged.page_count(), mem.page_count());
        for pos in 0..400u64 {
            assert_eq!(paged.page_of_row(pos), mem.page_of_row(pos), "row {pos}");
        }
        // Contents identical.
        assert_eq!(*paged.snapshot().unwrap(), *mem.snapshot().unwrap());
        let mut out = Vec::new();
        paged.read_range(100, 140, &mut out).unwrap();
        assert_eq!(out, rows(100, 140));
        assert_eq!(paged.row_at(399).unwrap(), rows(399, 400)[0]);
        assert!(paged.row_at(400).is_err());
    }

    #[test]
    fn reopen_after_checkpoint_sees_all_rows() {
        let dir = std::env::temp_dir().join(format!("pop-paged-test-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = env_with(512, Some(dir.clone()));
            let b = PagedBackend::create(Arc::clone(&env), "t", false).unwrap();
            b.append(rows(0, 100)).unwrap();
            b.checkpoint().unwrap();
        }
        let env = env_with(512, Some(dir.clone()));
        let b = PagedBackend::open(&env, "t").unwrap();
        assert_eq!(b.row_count(), 100);
        assert_eq!(*b.snapshot().unwrap(), rows(0, 100));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_recovers_uncheckpointed_rows() {
        let dir = std::env::temp_dir().join(format!("pop-paged-test-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = env_with(512, Some(dir.clone()));
            let b = PagedBackend::create(Arc::clone(&env), "t", false).unwrap();
            b.append(rows(0, 60)).unwrap();
            b.checkpoint().unwrap();
            // Two more batches reach WAL + pages but never a checkpoint.
            b.append(rows(60, 90)).unwrap();
            b.append(rows(90, 120)).unwrap();
        }
        let env = env_with(512, Some(dir.clone()));
        let b = PagedBackend::open(&env, "t").unwrap();
        assert_eq!(b.row_count(), 120, "WAL replay must restore all rows");
        assert_eq!(*b.snapshot().unwrap(), rows(0, 120));
        assert!(env.io_stats().wal_replayed >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_loses_batch_but_recovers_prefix() {
        let dir = std::env::temp_dir().join(format!("pop-paged-test-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = env_with(512, Some(dir.clone()));
            let b = PagedBackend::create(Arc::clone(&env), "t", false).unwrap();
            b.append(rows(0, 50)).unwrap();
            env.arm_faults(FaultInjector::new(FaultPlan::parse_spec("torn@0").unwrap()));
            let err = b.append(rows(50, 80)).unwrap_err();
            assert!(err.to_string().contains("torn write"), "{err}");
            env.disarm_faults();
        }
        let env = env_with(512, Some(dir.clone()));
        let b = PagedBackend::open(&env, "t").unwrap();
        // The torn batch is gone; everything logged intact survives.
        assert_eq!(b.row_count(), 50);
        assert_eq!(*b.snapshot().unwrap(), rows(0, 50));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn primary_btree_builds_and_tracks_appends() {
        let env = env_with(512, None);
        let b = PagedBackend::create(Arc::clone(&env), "t", false).unwrap();
        b.append(rows(0, 100)).unwrap();
        let bt = b.ensure_primary(0).unwrap().unwrap();
        assert_eq!(bt.entry_count(), 100);
        assert_eq!(bt.probe(&Value::Int(42)).unwrap(), vec![42]);
        b.append(rows(100, 150)).unwrap();
        assert_eq!(bt.probe(&Value::Int(120)).unwrap(), vec![120]);
        assert_eq!(bt.entry_count(), 150);
        bt.verify().unwrap();
        // One primary per table: a different column declines.
        assert!(b.ensure_primary(1).unwrap().is_none());
        assert!(b.ensure_primary(0).unwrap().is_some());
    }

    #[test]
    fn temporary_backend_unlinks_files_on_drop() {
        let env = env_with(512, None);
        let b = PagedBackend::create(Arc::clone(&env), "mv", true).unwrap();
        b.append(rows(0, 10)).unwrap();
        b.ensure_primary(0).unwrap();
        let dir = env.ensure_dir().unwrap();
        assert!(dir.join("mv.dat").exists());
        assert!(dir.join("mv.idx").exists());
        drop(b);
        assert!(!dir.join("mv.dat").exists());
        assert!(!dir.join("mv.wal").exists());
        assert!(!dir.join("mv.idx").exists());
    }
}
