//! The pager: fixed-size page I/O over one file.

use pop_types::{PopError, PopResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> PopError {
    PopError::Execution(format!("storage io: {what} {}: {e}", path.display()))
}

/// A file of fixed-size pages. Page 0 is reserved for file metadata; data
/// and index pages start at 1. The pager performs raw I/O only — caching
/// lives in the [`BufferPool`](crate::BufferPool) above it.
#[derive(Debug)]
pub struct PageFile {
    path: PathBuf,
    file: File,
    page_size: usize,
    /// Number of pages currently in the file (including page 0).
    pages: u64,
}

impl PageFile {
    /// Open `path`, creating it if missing. A fresh file holds one
    /// (zeroed) metadata page.
    pub fn open(path: PathBuf, page_size: usize) -> PopResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, "open", &e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err(&path, "stat", &e))?
            .len();
        let mut pf = PageFile {
            path,
            file,
            page_size,
            pages: len / page_size as u64,
        };
        if pf.pages == 0 {
            pf.write_page(0, &vec![0u8; page_size])?;
        }
        Ok(pf)
    }

    /// File path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Pages in the file (metadata page included).
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Read page `pid` in full. `truncate_to` (fault injection) cuts the
    /// read short to simulate a torn page, which surfaces as a typed error.
    pub fn read_page(&mut self, pid: u64, truncate_to: Option<usize>) -> PopResult<Vec<u8>> {
        if pid >= self.pages {
            return Err(PopError::Execution(format!(
                "storage io: page {pid} out of range ({} pages) in {}",
                self.pages,
                self.path.display()
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid * self.page_size as u64))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        let want = truncate_to.map_or(self.page_size, |t| t.min(self.page_size));
        let mut buf = vec![0u8; want];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| io_err(&self.path, "read", &e))?;
        if want < self.page_size {
            return Err(PopError::Execution(format!(
                "injected fault: short read of page {pid} ({want} of {} bytes) from {}",
                self.page_size,
                self.path.display()
            )));
        }
        Ok(buf)
    }

    /// Write page `pid` (extending the file when `pid` is the next page).
    pub fn write_page(&mut self, pid: u64, bytes: &[u8]) -> PopResult<()> {
        debug_assert_eq!(bytes.len(), self.page_size);
        if pid > self.pages {
            return Err(PopError::Execution(format!(
                "storage io: non-contiguous page write {pid} (have {})",
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid * self.page_size as u64))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        self.file
            .write_all(bytes)
            .map_err(|e| io_err(&self.path, "write", &e))?;
        if pid == self.pages {
            self.pages += 1;
        }
        Ok(())
    }

    /// Flush file contents to the OS.
    pub fn sync(&mut self) -> PopResult<()> {
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pop-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("rt.dat");
        let _ = std::fs::remove_file(&path);
        let mut pf = PageFile::open(path.clone(), 256).unwrap();
        assert_eq!(pf.page_count(), 1);
        let page: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        pf.write_page(1, &page).unwrap();
        assert_eq!(pf.page_count(), 2);
        assert_eq!(pf.read_page(1, None).unwrap(), page);
        // Reopen sees the same contents.
        drop(pf);
        let mut pf = PageFile::open(path.clone(), 256).unwrap();
        assert_eq!(pf.page_count(), 2);
        assert_eq!(pf.read_page(1, None).unwrap(), page);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_and_short_read_error() {
        let path = tmp("oor.dat");
        let _ = std::fs::remove_file(&path);
        let mut pf = PageFile::open(path.clone(), 256).unwrap();
        assert!(pf.read_page(5, None).is_err());
        pf.write_page(1, &vec![7u8; 256]).unwrap();
        let err = pf.read_page(1, Some(10)).unwrap_err();
        assert!(err.to_string().contains("short read"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
