//! Tables: immutable-snapshot row storage with copy-on-write inserts.

use parking_lot::RwLock;
use pop_types::{PopError, PopResult, Row, Schema};
use std::sync::Arc;

/// Catalog-assigned table identifier (also the `table` part of a `Rid`).
pub type TableId = u32;

/// An in-memory table.
///
/// Rows live behind an `Arc` snapshot: scans grab the snapshot cheaply and
/// are immune to concurrent inserts (side-effect operators insert via
/// copy-on-write). This gives the runtime the simple "repeatable read
/// within a query" behaviour the POP driver relies on when it re-runs parts
/// of a query after re-optimization.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    name: String,
    schema: Schema,
    rows: RwLock<Arc<Vec<Row>>>,
}

impl Table {
    /// Create a table with the given rows.
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            id,
            name: name.into(),
            schema,
            rows: RwLock::new(Arc::new(rows)),
        }
    }

    /// Catalog id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A cheap snapshot of the rows.
    pub fn snapshot(&self) -> Arc<Vec<Row>> {
        self.rows.read().clone()
    }

    /// Current row count.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Append rows (copy-on-write). Returns the starting row position of
    /// the appended batch.
    pub fn insert(&self, new_rows: Vec<Row>) -> PopResult<u64> {
        for r in &new_rows {
            if r.len() != self.schema.len() {
                return Err(PopError::Execution(format!(
                    "insert into {}: row has {} values, schema has {}",
                    self.name,
                    r.len(),
                    self.schema.len()
                )));
            }
        }
        let mut guard = self.rows.write();
        let start = guard.len() as u64;
        let rows = Arc::make_mut(&mut guard);
        rows.extend(new_rows);
        Ok(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        Table::new(
            0,
            "t",
            schema,
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
    }

    #[test]
    fn snapshot_isolated_from_insert() {
        let t = table();
        let snap = t.snapshot();
        t.insert(vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn insert_returns_start_position() {
        let t = table();
        let start = t
            .insert(vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        assert_eq!(start, 2);
    }

    #[test]
    fn insert_wrong_arity_rejected() {
        let t = table();
        assert!(t.insert(vec![vec![Value::Int(3)]]).is_err());
        assert_eq!(t.row_count(), 2);
    }
}
