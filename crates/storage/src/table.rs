//! Tables: schema + a pluggable [`StorageBackend`].
//!
//! Rows are append-only and positions are stable, so scans opened over a
//! fixed row range see "repeatable read within a query" on either
//! backend: the mem backend hands out immutable `Arc` snapshots, the
//! paged backend reads pages whose committed prefix never changes. This
//! is the behaviour the POP driver relies on when it re-runs parts of a
//! query after re-optimization.

use crate::backend::StorageBackend;
use crate::cursor::{RowFetcher, TableCursor};
use crate::mem::MemBackend;
use crate::page::PageLayout;
use pop_types::{PopError, PopResult, Row, Schema};
use std::sync::Arc;

/// Catalog-assigned table identifier (also the `table` part of a `Rid`).
pub type TableId = u32;

/// A table: identity, schema, and the backend holding its rows.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    name: String,
    schema: Schema,
    backend: Arc<dyn StorageBackend>,
}

impl Table {
    /// Create an in-memory table with the given rows (the default page
    /// geometry provides the virtual page map).
    ///
    /// Panics if a single row exceeds the default page size — construct
    /// through a catalog with a larger [`PageLayout`] for such rows.
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        let backend = MemBackend::with_rows(PageLayout::default(), rows)
            .expect("row exceeds the default page size");
        Table::with_backend(id, name, schema, Arc::new(backend))
    }

    /// Create a table over an existing backend.
    pub fn with_backend(
        id: TableId,
        name: impl Into<String>,
        schema: Schema,
        backend: Arc<dyn StorageBackend>,
    ) -> Self {
        Table {
            id,
            name: name.into(),
            schema,
            backend,
        }
    }

    /// Catalog id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The storage backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// True when rows live on pages (behind the buffer pool) rather than
    /// in memory.
    pub fn is_paged(&self) -> bool {
        self.backend.is_paged()
    }

    /// Data pages currently holding the table (virtual for the mem
    /// backend — same packing rule, same count).
    pub fn page_count(&self) -> u64 {
        self.backend.page_count()
    }

    /// A materialized snapshot of the rows. Cheap (`Arc` clone) on the
    /// mem backend; the paged backend decodes every page, so streaming
    /// consumers should prefer [`Table::cursor`].
    ///
    /// Panics if a page read fails — callers that can surface storage
    /// errors use [`Table::cursor`] / [`Table::fetcher`] instead.
    pub fn snapshot(&self) -> Arc<Vec<Row>> {
        self.backend
            .snapshot()
            .expect("storage error while materializing a table snapshot")
    }

    /// A sequential cursor over rows `[lo, hi)` (clamped).
    pub fn cursor(&self, lo: u64, hi: u64) -> PopResult<TableCursor> {
        TableCursor::over(Arc::clone(&self.backend), lo, hi)
    }

    /// A positional row fetcher over the current rows.
    pub fn fetcher(&self) -> RowFetcher {
        RowFetcher::over(Arc::clone(&self.backend))
    }

    /// Current row count.
    pub fn row_count(&self) -> usize {
        self.backend.row_count() as usize
    }

    /// Append rows. Returns the starting row position of the appended
    /// batch. On the paged backend the batch is WAL-logged first.
    pub fn insert(&self, new_rows: Vec<Row>) -> PopResult<u64> {
        for r in &new_rows {
            if r.len() != self.schema.len() {
                return Err(PopError::Execution(format!(
                    "insert into {}: row has {} values, schema has {}",
                    self.name,
                    r.len(),
                    self.schema.len()
                )));
            }
        }
        self.backend.append(new_rows)
    }

    /// Make the table durable (paged backend: sync + meta + WAL
    /// truncation; mem backend: no-op).
    pub fn checkpoint(&self) -> PopResult<()> {
        self.backend.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        Table::new(
            0,
            "t",
            schema,
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
    }

    #[test]
    fn snapshot_isolated_from_insert() {
        let t = table();
        let snap = t.snapshot();
        t.insert(vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn insert_returns_start_position() {
        let t = table();
        let start = t
            .insert(vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        assert_eq!(start, 2);
    }

    #[test]
    fn insert_wrong_arity_rejected() {
        let t = table();
        assert!(t.insert(vec![vec![Value::Int(3)]]).is_err());
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn mem_table_reports_virtual_pages() {
        let t = table();
        assert!(!t.is_paged());
        assert_eq!(t.page_count(), 1);
        let mut c = t.cursor(0, u64::MAX).unwrap();
        let ch = c.next_chunk(10).unwrap().unwrap();
        assert_eq!(ch.rows.len(), 2);
        assert_eq!(ch.new_pages, 1);
    }
}
