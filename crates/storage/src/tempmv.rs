//! Temporary materialized views created from intermediate results.

use crate::Table;
use pop_types::ColId;
use std::sync::Arc;

/// A temporary materialized view promoted from an intermediate result when
/// a CHECK fails (§2.3).
///
/// The `signature` is an opaque canonical string identifying *which part of
/// the query* the rows compute: the set of query tables joined, the
/// fingerprints of all predicates applied, and the column layout. During
/// re-optimization, the optimizer offers an `MvScan` alternative for any
/// subplan whose signature matches, carrying the **actual** cardinality —
/// the optimizer then makes a cost-based decision whether to reuse it.
///
/// On the paged backend the backing table is a *temporary* backend: its
/// rows spill to pages (so promotion cannot OOM) but skip the WAL and
/// checkpointing, and the page file is unlinked when the last `Arc` to
/// the table drops — `Catalog::clear_temp_mvs` (run by the driver's RAII
/// MV-cleanup guard) is therefore also the file cleanup.
#[derive(Debug, Clone)]
pub struct TempMv {
    /// Backing storage for the materialized rows.
    pub table: Arc<Table>,
    /// Canonical signature of the subplan that produced the rows.
    pub signature: String,
    /// Column layout of the materialized rows (query-table/column ids).
    pub layout: Vec<ColId>,
    /// Actual (exact) cardinality, recorded at materialization time.
    pub actual_card: u64,
    /// Lineage of base-table rids per materialized row, when tracked.
    pub lineage: Option<Arc<Vec<Vec<pop_types::Rid>>>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::{DataType, Schema};

    #[test]
    fn construct() {
        let t = Arc::new(Table::new(
            100,
            "__mv_1",
            Schema::from_pairs(&[("a", DataType::Int)]),
            vec![],
        ));
        let mv = TempMv {
            table: t,
            signature: "sig".into(),
            layout: vec![ColId::new(0, 0)],
            actual_card: 0,
            lineage: None,
        };
        assert_eq!(mv.signature, "sig");
        assert_eq!(mv.table.row_count(), 0);
    }
}
