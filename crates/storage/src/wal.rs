//! The write-ahead log: redo records for bulk loads and appends.
//!
//! Each paged table owns one WAL file. An append first goes to the WAL
//! (flushed), then to data pages; recovery replays every intact record
//! whose rows lie past the checkpointed row count, so a crash between
//! the WAL flush and the page write loses nothing. A record with a torn
//! tail (short frame or checksum mismatch) marks the crash point —
//! replay stops there and the file is truncated on the next checkpoint.
//!
//! Record framing:
//!
//! ```text
//! [0..4]   payload length (u32 LE)
//! [4..12]  FNV-1a 64 checksum of the payload (u64 LE)
//! [12..]   payload: start_row (u64 LE), n_rows (u32 LE), encoded rows
//! ```

use crate::page::{decode_row, encode_row};
use pop_types::{PopError, PopResult, Row};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const FRAME_HDR: usize = 12;

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> PopError {
    PopError::Execution(format!("wal io: {what} {}: {e}", path.display()))
}

/// FNV-1a 64-bit checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One replayed WAL record.
#[derive(Debug)]
pub struct WalRecord {
    /// Table position of the first row in the record.
    pub start_row: u64,
    /// The rows.
    pub rows: Vec<Row>,
}

/// A per-table write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Open (or create) the WAL at `path`, positioned for appending.
    pub fn open(path: PathBuf) -> PopResult<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, "open", &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(&path, "seek", &e))?;
        Ok(Wal { path, file })
    }

    /// File path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serialize one record frame.
    fn frame(start_row: u64, rows: &[Row]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&start_row.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for row in rows {
            encode_row(row, &mut payload);
        }
        let mut frame = Vec::with_capacity(FRAME_HDR + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Append and flush one redo record; returns the frame size in bytes.
    /// With `torn` set (fault injection) only half the frame reaches the
    /// file before an injected-crash error — exactly the on-disk state a
    /// real crash mid-`write` leaves behind.
    pub fn append(&mut self, start_row: u64, rows: &[Row], torn: bool) -> PopResult<u64> {
        let frame = Self::frame(start_row, rows);
        if torn {
            let half = frame.len() / 2;
            self.file
                .write_all(&frame[..half])
                .map_err(|e| io_err(&self.path, "write", &e))?;
            let _ = self.file.flush();
            return Err(PopError::Execution(format!(
                "injected fault: torn write ({half} of {} bytes) in {}",
                frame.len(),
                self.path.display()
            )));
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "write", &e))?;
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", &e))?;
        Ok(frame.len() as u64)
    }

    /// Truncate the log (checkpoint: pages + meta are durable).
    pub fn truncate(&mut self) -> PopResult<()> {
        self.file
            .set_len(0)
            .map_err(|e| io_err(&self.path, "truncate", &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        Ok(())
    }

    /// Read every intact record from the WAL at `path` (missing file =
    /// no records). Stops silently at the first torn or corrupt frame —
    /// that is the crash point; everything before it is valid redo.
    pub fn replay(path: &Path) -> PopResult<Vec<WalRecord>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| io_err(path, "read", &e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(path, "open", &e)),
        }
        let mut records = Vec::new();
        let mut at = 0usize;
        while at + FRAME_HDR <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let crc = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            let Some(payload) = bytes.get(at + FRAME_HDR..at + FRAME_HDR + len) else {
                break; // torn tail
            };
            if fnv1a(payload) != crc {
                break; // corrupt tail
            }
            let mut p = 0usize;
            let start_row = u64::from_le_bytes(payload[p..p + 8].try_into().unwrap());
            p += 8;
            let n = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap());
            p += 4;
            let mut rows = Vec::with_capacity(n as usize);
            let mut ok = true;
            for _ in 0..n {
                if let Ok(row) = decode_row(payload, &mut p) {
                    rows.push(row);
                } else {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            records.push(WalRecord { start_row, rows });
            at += FRAME_HDR + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_types::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pop-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rows(lo: i64, hi: i64) -> Vec<Row> {
        (lo..hi)
            .map(|i| vec![Value::Int(i), Value::str(format!("r{i}"))])
            .collect()
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(path.clone()).unwrap();
        wal.append(0, &rows(0, 5), false).unwrap();
        wal.append(5, &rows(5, 8), false).unwrap();
        drop(wal);
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].start_row, recs[0].rows.len()), (0, 5));
        assert_eq!((recs[1].start_row, recs[1].rows.len()), (5, 3));
        assert_eq!(recs[1].rows, rows(5, 8));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_stops_replay_at_crash_point() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(path.clone()).unwrap();
        wal.append(0, &rows(0, 4), false).unwrap();
        let err = wal.append(4, &rows(4, 8), true).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        drop(wal);
        // The intact first record replays; the torn tail does not.
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rows, rows(0, 4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_log_and_missing_file_is_empty() {
        let path = tmp("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(path.clone()).unwrap();
        wal.append(0, &rows(0, 3), false).unwrap();
        wal.truncate().unwrap();
        wal.append(3, &rows(3, 4), false).unwrap();
        drop(wal);
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].start_row, 3);
        std::fs::remove_file(&path).unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }
}
