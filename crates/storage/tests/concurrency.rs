//! Catalog and table thread-safety: the POP driver registers temp MVs
//! while scans hold snapshots; these tests exercise that pattern under
//! real concurrency.

use pop_storage::{Catalog, Table, TempMv};
use pop_types::{ColId, DataType, Schema, Value};
use std::sync::Arc;
use std::thread;

fn schema() -> Schema {
    Schema::from_pairs(&[("a", DataType::Int)])
}

#[test]
fn snapshots_are_immune_to_concurrent_inserts() {
    let cat = Catalog::new();
    let t = cat
        .create_table(
            "t",
            schema(),
            (0..1000).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
    let snap = t.snapshot();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let t = t.clone();
            thread::spawn(move || {
                for i in 0..250 {
                    t.insert(vec![vec![Value::Int(10_000 + k * 1000 + i)]])
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(snap.len(), 1000, "snapshot changed under writers");
    assert_eq!(t.row_count(), 2000);
}

#[test]
fn concurrent_temp_mv_registration_and_lookup() {
    let cat = Catalog::new();
    let writers: Vec<_> = (0..4)
        .map(|k| {
            let cat = cat.clone();
            thread::spawn(move || {
                for i in 0..50 {
                    let id = cat.allocate_temp_id();
                    let table = Arc::new(Table::new(
                        id,
                        format!("__mv_{k}_{i}"),
                        Schema::from_pairs(&[("a", DataType::Int)]),
                        vec![vec![Value::Int(i)]],
                    ));
                    cat.register_temp_mv(TempMv {
                        table,
                        signature: format!("sig_{k}_{i}"),
                        layout: vec![ColId::new(0, 0)],
                        actual_card: 1,
                        lineage: None,
                    });
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let cat = cat.clone();
            thread::spawn(move || {
                let mut seen = 0;
                for _ in 0..200 {
                    seen += cat.temp_mvs().len();
                }
                seen
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
    assert_eq!(cat.temp_mv_count(), 200);
    cat.clear_temp_mvs();
    assert_eq!(cat.temp_mv_count(), 0);
    // Every MV table was dropped from the catalog too.
    assert!(cat.table_names().iter().all(|n| !n.starts_with("__mv_")));
}

#[test]
fn table_ids_are_unique_under_concurrent_allocation() {
    let cat = Catalog::new();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cat = cat.clone();
            thread::spawn(move || (0..100).map(|_| cat.allocate_temp_id()).collect::<Vec<_>>())
        })
        .collect();
    let mut all: Vec<u32> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "duplicate table ids allocated");
}
