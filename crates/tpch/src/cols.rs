//! Column-position constants for the TPC-H-like schema.
//!
//! Queries reference columns by position; these constants keep the query
//! definitions readable and the schema changes safe.

/// REGION(r_regionkey, r_name)
pub mod region {
    /// r_regionkey
    pub const REGIONKEY: usize = 0;
    /// r_name
    pub const NAME: usize = 1;
}

/// NATION(n_nationkey, n_name, n_regionkey)
pub mod nation {
    /// n_nationkey
    pub const NATIONKEY: usize = 0;
    /// n_name
    pub const NAME: usize = 1;
    /// n_regionkey
    pub const REGIONKEY: usize = 2;
}

/// SUPPLIER(s_suppkey, s_name, s_nationkey, s_acctbal)
pub mod supplier {
    /// s_suppkey
    pub const SUPPKEY: usize = 0;
    /// s_name
    pub const NAME: usize = 1;
    /// s_nationkey
    pub const NATIONKEY: usize = 2;
    /// s_acctbal
    pub const ACCTBAL: usize = 3;
}

/// CUSTOMER(c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment)
pub mod customer {
    /// c_custkey
    pub const CUSTKEY: usize = 0;
    /// c_name
    pub const NAME: usize = 1;
    /// c_nationkey
    pub const NATIONKEY: usize = 2;
    /// c_acctbal
    pub const ACCTBAL: usize = 3;
    /// c_mktsegment
    pub const MKTSEGMENT: usize = 4;
}

/// ORDERS(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate,
/// o_orderpriority)
pub mod orders {
    /// o_orderkey
    pub const ORDERKEY: usize = 0;
    /// o_custkey
    pub const CUSTKEY: usize = 1;
    /// o_orderstatus
    pub const ORDERSTATUS: usize = 2;
    /// o_totalprice
    pub const TOTALPRICE: usize = 3;
    /// o_orderdate
    pub const ORDERDATE: usize = 4;
    /// o_orderpriority
    pub const ORDERPRIORITY: usize = 5;
}

/// LINEITEM(l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice,
/// l_discount, l_returnflag, l_shipdate, l_commitdate, l_receiptdate)
pub mod lineitem {
    /// l_orderkey
    pub const ORDERKEY: usize = 0;
    /// l_partkey
    pub const PARTKEY: usize = 1;
    /// l_suppkey
    pub const SUPPKEY: usize = 2;
    /// l_quantity
    pub const QUANTITY: usize = 3;
    /// l_extendedprice
    pub const EXTENDEDPRICE: usize = 4;
    /// l_discount
    pub const DISCOUNT: usize = 5;
    /// l_returnflag
    pub const RETURNFLAG: usize = 6;
    /// l_shipdate
    pub const SHIPDATE: usize = 7;
    /// l_commitdate
    pub const COMMITDATE: usize = 8;
    /// l_receiptdate
    pub const RECEIPTDATE: usize = 9;
}

/// PART(p_partkey, p_name, p_brand, p_type, p_size, p_retailprice)
pub mod part {
    /// p_partkey
    pub const PARTKEY: usize = 0;
    /// p_name
    pub const NAME: usize = 1;
    /// p_brand
    pub const BRAND: usize = 2;
    /// p_type
    pub const TYPE: usize = 3;
    /// p_size
    pub const SIZE: usize = 4;
    /// p_retailprice
    pub const RETAILPRICE: usize = 5;
}

/// PARTSUPP(ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)
pub mod partsupp {
    /// ps_partkey
    pub const PARTKEY: usize = 0;
    /// ps_suppkey
    pub const SUPPKEY: usize = 1;
    /// ps_availqty
    pub const AVAILQTY: usize = 2;
    /// ps_supplycost
    pub const SUPPLYCOST: usize = 3;
}
