//! Deterministic TPC-H-like data generation.

use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, PopResult, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Days covered by the date columns (7 years, like TPC-H's 1992–1998).
pub const DATE_RANGE: i32 = 2556;

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const NAME_WORDS: [&str; 10] = [
    "green", "blue", "red", "ivory", "misty", "metallic", "pale", "dark", "light", "spring",
];

/// TPC-H-like generator. Deterministic for a given `(sf, seed)`.
#[derive(Debug, Clone)]
pub struct TpchGen {
    /// Scale factor; `1.0` ≈ classic TPC-H row counts.
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchGen {
    fn default() -> Self {
        TpchGen {
            sf: 0.002,
            seed: 42,
        }
    }
}

impl TpchGen {
    /// Generator at a scale factor with the default seed.
    pub fn new(sf: f64) -> Self {
        TpchGen { sf, seed: 42 }
    }

    fn count(&self, base: f64) -> usize {
        ((base * self.sf).round() as usize).max(1)
    }

    /// Rows per table at this scale factor.
    pub fn sizes(&self) -> TpchSizes {
        TpchSizes {
            supplier: self.count(10_000.0),
            customer: self.count(150_000.0),
            orders: self.count(1_500_000.0),
            lineitem: self.count(6_000_000.0),
            part: self.count(200_000.0),
            partsupp: self.count(800_000.0),
        }
    }

    /// Generate all eight tables plus key indexes into `catalog`.
    pub fn generate(&self, catalog: &Catalog) -> PopResult<()> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sz = self.sizes();

        // REGION
        catalog.create_table(
            "region",
            Schema::from_pairs(&[("r_regionkey", DataType::Int), ("r_name", DataType::Str)]),
            REGIONS
                .iter()
                .enumerate()
                .map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n)])
                .collect(),
        )?;

        // NATION
        catalog.create_table(
            "nation",
            Schema::from_pairs(&[
                ("n_nationkey", DataType::Int),
                ("n_name", DataType::Str),
                ("n_regionkey", DataType::Int),
            ]),
            NATIONS
                .iter()
                .enumerate()
                .map(|(i, (n, r))| vec![Value::Int(i as i64), Value::str(*n), Value::Int(*r)])
                .collect(),
        )?;

        // SUPPLIER
        let supplier: Vec<Row> = (0..sz.supplier)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float(f64::from(rng.gen_range(-99_999..=999_999)) / 100.0),
                ]
            })
            .collect();
        catalog.create_table(
            "supplier",
            Schema::from_pairs(&[
                ("s_suppkey", DataType::Int),
                ("s_name", DataType::Str),
                ("s_nationkey", DataType::Int),
                ("s_acctbal", DataType::Float),
            ]),
            supplier,
        )?;

        // CUSTOMER
        let customer: Vec<Row> = (0..sz.customer)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Customer#{i:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float(f64::from(rng.gen_range(-99_999..=999_999)) / 100.0),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                ]
            })
            .collect();
        catalog.create_table(
            "customer",
            Schema::from_pairs(&[
                ("c_custkey", DataType::Int),
                ("c_name", DataType::Str),
                ("c_nationkey", DataType::Int),
                ("c_acctbal", DataType::Float),
                ("c_mktsegment", DataType::Str),
            ]),
            customer,
        )?;

        // ORDERS
        let orders: Vec<Row> = (0..sz.orders)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..sz.customer as i64)),
                    Value::str(["F", "O", "P"][rng.gen_range(0..3usize)]),
                    Value::Float(f64::from(rng.gen_range(1_000..=500_000)) / 100.0),
                    Value::Date(rng.gen_range(0..DATE_RANGE)),
                    Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                ]
            })
            .collect();
        catalog.create_table(
            "orders",
            Schema::from_pairs(&[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderstatus", DataType::Str),
                ("o_totalprice", DataType::Float),
                ("o_orderdate", DataType::Date),
                ("o_orderpriority", DataType::Str),
            ]),
            orders,
        )?;

        // PART
        let part: Vec<Row> = (0..sz.part)
            .map(|i| {
                let w1 = NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())];
                let w2 = NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())];
                let ptype = format!(
                    "{} {} {}",
                    TYPE_SYLL1[rng.gen_range(0..TYPE_SYLL1.len())],
                    TYPE_SYLL2[rng.gen_range(0..TYPE_SYLL2.len())],
                    TYPE_SYLL3[rng.gen_range(0..TYPE_SYLL3.len())],
                );
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("{w1} {w2} part")),
                    Value::str(format!(
                        "Brand#{}{}",
                        rng.gen_range(1..=5),
                        rng.gen_range(1..=5)
                    )),
                    Value::str(ptype),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Float(f64::from(rng.gen_range(90_000..=200_000)) / 100.0),
                ]
            })
            .collect();
        catalog.create_table(
            "part",
            Schema::from_pairs(&[
                ("p_partkey", DataType::Int),
                ("p_name", DataType::Str),
                ("p_brand", DataType::Str),
                ("p_type", DataType::Str),
                ("p_size", DataType::Int),
                ("p_retailprice", DataType::Float),
            ]),
            part,
        )?;

        // PARTSUPP: each part supplied by 4 suppliers.
        let partsupp: Vec<Row> = (0..sz.partsupp)
            .map(|i| {
                vec![
                    Value::Int((i / 4) as i64 % sz.part as i64),
                    Value::Int(rng.gen_range(0..sz.supplier as i64)),
                    Value::Int(rng.gen_range(1..=9999)),
                    Value::Float(f64::from(rng.gen_range(100..=100_000)) / 100.0),
                ]
            })
            .collect();
        catalog.create_table(
            "partsupp",
            Schema::from_pairs(&[
                ("ps_partkey", DataType::Int),
                ("ps_suppkey", DataType::Int),
                ("ps_availqty", DataType::Int),
                ("ps_supplycost", DataType::Float),
            ]),
            partsupp,
        )?;

        // LINEITEM: ~4 lines per order.
        let lineitem: Vec<Row> = (0..sz.lineitem)
            .map(|_| {
                let ship = rng.gen_range(0..DATE_RANGE);
                let commit = ship + rng.gen_range(-30..60);
                let receipt = ship + rng.gen_range(1..30);
                // The paper notes l_returnflag-style flags are skewed.
                let flag = match rng.gen_range(0..100) {
                    0..=24 => "R",
                    25..=49 => "A",
                    _ => "N",
                };
                vec![
                    Value::Int(rng.gen_range(0..sz.orders as i64)),
                    Value::Int(rng.gen_range(0..sz.part as i64)),
                    Value::Int(rng.gen_range(0..sz.supplier as i64)),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Float(f64::from(rng.gen_range(90_000..=10_000_000)) / 100.0),
                    Value::Float(f64::from(rng.gen_range(0..=10)) / 100.0),
                    Value::str(flag),
                    Value::Date(ship),
                    Value::Date(commit),
                    Value::Date(receipt),
                ]
            })
            .collect();
        catalog.create_table(
            "lineitem",
            Schema::from_pairs(&[
                ("l_orderkey", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_suppkey", DataType::Int),
                ("l_quantity", DataType::Int),
                ("l_extendedprice", DataType::Float),
                ("l_discount", DataType::Float),
                ("l_returnflag", DataType::Str),
                ("l_shipdate", DataType::Date),
                ("l_commitdate", DataType::Date),
                ("l_receiptdate", DataType::Date),
            ]),
            lineitem,
        )?;

        // Hash indexes on every key/FK column a join might probe.
        for (table, column) in [
            ("region", "r_regionkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("part", "p_partkey"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
        ] {
            catalog.create_index(table, column, IndexKind::Hash)?;
        }
        // Sorted indexes on range-filtered columns (dates, sizes,
        // quantities) enable index range scans as an access path.
        for (table, column) in [
            ("orders", "o_orderdate"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_quantity"),
            ("part", "p_size"),
            ("orders", "o_totalprice"),
        ] {
            catalog.create_index(table, column, IndexKind::Sorted)?;
        }
        Ok(())
    }
}

/// Row counts at a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchSizes {
    /// SUPPLIER rows.
    pub supplier: usize,
    /// CUSTOMER rows.
    pub customer: usize,
    /// ORDERS rows.
    pub orders: usize,
    /// LINEITEM rows.
    pub lineitem: usize,
    /// PART rows.
    pub part: usize,
    /// PARTSUPP rows.
    pub partsupp: usize,
}

/// Build a fresh catalog holding the TPC-H-like database at scale `sf`.
pub fn tpch_catalog(sf: f64) -> PopResult<Catalog> {
    let catalog = Catalog::new();
    TpchGen::new(sf).generate(&catalog)?;
    Ok(catalog)
}

/// Build the same database over an explicit storage configuration (e.g.
/// the paged backend with a deliberately tiny buffer pool). The load
/// streams through the catalog's chunked bulk loader.
pub fn tpch_catalog_with(sf: f64, storage: pop_storage::StorageConfig) -> PopResult<Catalog> {
    let catalog = Catalog::with_storage(storage);
    TpchGen::new(sf).generate(&catalog)?;
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_linearly() {
        let g = TpchGen::new(0.002);
        let s = g.sizes();
        assert_eq!(s.lineitem, 12_000);
        assert_eq!(s.orders, 3_000);
        assert_eq!(s.customer, 300);
        assert_eq!(s.supplier, 20);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tpch_catalog(0.0005).unwrap();
        let b = tpch_catalog(0.0005).unwrap();
        let ta = a.table("lineitem").unwrap();
        let tb = b.table("lineitem").unwrap();
        assert_eq!(*ta.snapshot(), *tb.snapshot());
    }

    #[test]
    fn all_tables_and_indexes_exist() {
        let cat = tpch_catalog(0.0005).unwrap();
        for t in [
            "region", "nation", "supplier", "customer", "orders", "part", "partsupp", "lineitem",
        ] {
            assert!(cat.table(t).is_ok(), "missing table {t}");
        }
        let orders = cat.table("orders").unwrap();
        assert!(cat.find_index(orders.id(), 0, false).is_some());
        assert_eq!(cat.table("region").unwrap().row_count(), 5);
        assert_eq!(cat.table("nation").unwrap().row_count(), 25);
    }

    #[test]
    fn foreign_keys_in_range() {
        let cat = tpch_catalog(0.0005).unwrap();
        let customers = cat.table("customer").unwrap().row_count() as i64;
        for row in cat.table("orders").unwrap().snapshot().iter() {
            let cust = row[1].as_i64().unwrap();
            assert!((0..customers).contains(&cust));
        }
    }

    #[test]
    fn returnflag_distribution_is_skewed() {
        let cat = tpch_catalog(0.002).unwrap();
        let li = cat.table("lineitem").unwrap();
        let r = li
            .snapshot()
            .iter()
            .filter(|row| row[6].as_str() == Some("R"))
            .count() as f64;
        let frac = r / li.row_count() as f64;
        assert!((0.2..0.3).contains(&frac), "R fraction {frac}");
    }
}
