//! A TPC-H-like schema, deterministic data generator and query suite.
//!
//! The paper's performance analysis (§5) runs POP on TPC-H. This crate
//! provides a scaled-down, in-memory TPC-H: the eight standard tables with
//! the columns the queries need, sequential primary keys, uniform foreign
//! keys, seeded pseudo-random attributes, and hash indexes on all key
//! columns (so index NLJN is available everywhere the real benchmark would
//! have it).
//!
//! Queries are structural reproductions of the TPC-H queries used in the
//! paper's figures (Q2, Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q11, Q18): the same
//! join graphs, predicate shapes and aggregations, expressed as
//! [`pop_plan::QuerySpec`]s (the engine has no SQL parser).
//!
//! Scale: `sf = 1.0` corresponds to classic TPC-H sizes (6M lineitems);
//! experiments here run at `sf ≈ 0.002..0.01` (12k–60k lineitems), which
//! preserves all table-size *ratios* and therefore the plan-choice
//! structure.

pub mod cols;
mod gen;
mod queries;

pub use gen::{tpch_catalog, tpch_catalog_with, TpchGen};
pub use queries::{
    all_queries, extended_queries, q1, q10, q10_selectivity_literal, q11, q12, q14, q16, q17, q18,
    q19, q2, q22, q3, q4, q5, q6, q7, q8, q9,
};
