//! Structural reproductions of the TPC-H queries used in the paper's
//! experiments (§5): the same join graphs, predicate shapes and
//! aggregations, expressed as [`QuerySpec`]s. Dates are day numbers in
//! `0..2556` (7 years), so TPC-H's date constants translate to day
//! offsets.

use crate::cols::{customer, lineitem, nation, orders, part, partsupp, region, supplier};
use pop_expr::Expr;
use pop_plan::{AggFunc, QueryBuilder, QuerySpec};
use pop_types::{ColId, Value};

fn build(b: QueryBuilder) -> QuerySpec {
    b.build().expect("query spec must validate")
}

/// Q1: the pricing summary report — a single-table scan with heavy
/// aggregation (no joins, no POP opportunities: a useful baseline).
pub fn q1() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("lineitem");
    b.filter(
        l,
        Expr::col(l, lineitem::SHIPDATE).le(Expr::lit(Value::Date(2430))),
    );
    b.aggregate(
        &[(l, lineitem::RETURNFLAG)],
        vec![
            AggFunc::Sum(ColId::new(l, lineitem::QUANTITY)),
            AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE)),
            AggFunc::Avg(ColId::new(l, lineitem::QUANTITY)),
            AggFunc::Avg(ColId::new(l, lineitem::EXTENDEDPRICE)),
            AggFunc::Avg(ColId::new(l, lineitem::DISCOUNT)),
            AggFunc::Count,
        ],
    );
    b.order_by(0, false);
    build(b)
}

/// Q6: the forecasting revenue change query — a highly selective
/// single-table range predicate, the showcase for index range scans.
pub fn q6() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("lineitem");
    b.filter(
        l,
        Expr::col(l, lineitem::SHIPDATE)
            .between(Expr::lit(Value::Date(365)), Expr::lit(Value::Date(729)))
            .and(Expr::col(l, lineitem::QUANTITY).lt(Expr::lit(24i64))),
    );
    b.aggregate(
        &[],
        vec![
            AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE)),
            AggFunc::Count,
        ],
    );
    build(b)
}

/// Q12: shipping modes and order priority — ORDERS ⋈ LINEITEM with date
/// window and cross-column date comparisons on LINEITEM.
pub fn q12() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let o = b.table("orders");
    let l = b.table("lineitem");
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.filter(
        l,
        Expr::col(l, lineitem::RECEIPTDATE)
            .between(Expr::lit(Value::Date(365)), Expr::lit(Value::Date(729)))
            .and(Expr::col(l, lineitem::COMMITDATE).lt(Expr::col(l, lineitem::RECEIPTDATE)))
            .and(Expr::col(l, lineitem::SHIPDATE).lt(Expr::col(l, lineitem::COMMITDATE))),
    );
    b.filter(
        o,
        Expr::col(o, orders::ORDERPRIORITY)
            .in_list(vec![Value::str("1-URGENT"), Value::str("2-HIGH")]),
    );
    b.aggregate(&[(o, orders::ORDERPRIORITY)], vec![AggFunc::Count]);
    b.order_by(0, false);
    build(b)
}

/// Q14: promotion effect — LINEITEM ⋈ PART with a date window and a LIKE
/// on p_type.
pub fn q14() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("lineitem");
    let p = b.table("part");
    b.join(l, lineitem::PARTKEY, p, part::PARTKEY);
    b.filter(
        l,
        Expr::col(l, lineitem::SHIPDATE)
            .between(Expr::lit(Value::Date(1000)), Expr::lit(Value::Date(1030))),
    );
    b.filter(p, Expr::col(p, part::TYPE).like("PROMO%"));
    b.aggregate(
        &[],
        vec![
            AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE)),
            AggFunc::Count,
        ],
    );
    build(b)
}

/// Q16: parts/supplier relationship — PARTSUPP ⋈ PART with negated
/// predicates (NOT LIKE, NOT IN are classic default-estimate territory).
pub fn q16() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let ps = b.table("partsupp");
    let p = b.table("part");
    b.join(ps, partsupp::PARTKEY, p, part::PARTKEY);
    b.filter(p, Expr::col(p, part::BRAND).eq(Expr::lit("Brand#45")).not());
    b.filter(p, Expr::col(p, part::TYPE).like("MEDIUM POLISHED%").not());
    b.filter(
        p,
        Expr::col(p, part::SIZE).in_list(
            [3i64, 9, 14, 19, 23, 36, 45, 49]
                .iter()
                .map(|v| Value::Int(*v))
                .collect(),
        ),
    );
    b.aggregate(
        &[(p, part::BRAND), (p, part::TYPE), (p, part::SIZE)],
        vec![AggFunc::Count],
    );
    b.order_by(3, true);
    build(b)
}

/// Q17: small-quantity-order revenue — LINEITEM ⋈ PART with a very
/// selective brand filter and a quantity cutoff.
pub fn q17() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("lineitem");
    let p = b.table("part");
    b.join(l, lineitem::PARTKEY, p, part::PARTKEY);
    b.filter(p, Expr::col(p, part::BRAND).eq(Expr::lit("Brand#23")));
    b.filter(l, Expr::col(l, lineitem::QUANTITY).lt(Expr::lit(5i64)));
    b.aggregate(
        &[],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    build(b)
}

/// Q19: discounted revenue — LINEITEM ⋈ PART with a three-armed
/// disjunction of correlated conjunctions, the paper's "complex IN-lists
/// and disjunctions" estimation-error class.
pub fn q19() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("lineitem");
    let p = b.table("part");
    b.join(l, lineitem::PARTKEY, p, part::PARTKEY);
    // TPC-H Q19 pairs each brand with a quantity window across tables;
    // with table-local predicates the brand/size disjunction stays on
    // PART and the union of the quantity windows goes on LINEITEM.
    let arm = |brand: &str, smax: i64| {
        Expr::col(1, part::BRAND)
            .eq(Expr::lit(brand))
            .and(Expr::col(1, part::SIZE).between(Expr::lit(1i64), Expr::lit(smax)))
    };
    b.filter(
        p,
        arm("Brand#12", 5)
            .or(arm("Brand#23", 10))
            .or(arm("Brand#34", 15)),
    );
    // ...and a quantity window on LINEITEM.
    b.filter(
        l,
        Expr::col(l, lineitem::QUANTITY).between(Expr::lit(1i64), Expr::lit(30i64)),
    );
    b.aggregate(
        &[],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    build(b)
}

/// Q22: global sales opportunity — well-funded customers with **no**
/// orders (real TPC-H uses NOT EXISTS), counted per nation.
pub fn q22() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let n = b.table("nation");
    b.join(c, customer::NATIONKEY, n, nation::NATIONKEY);
    b.filter(c, Expr::col(c, customer::ACCTBAL).gt(Expr::lit(5000.0)));
    b.not_exists("orders", (c, customer::CUSTKEY), orders::CUSTKEY, None);
    b.aggregate(
        &[(n, nation::NAME)],
        vec![
            AggFunc::Count,
            AggFunc::Sum(ColId::new(c, customer::ACCTBAL)),
        ],
    );
    b.order_by(0, false);
    build(b)
}

/// Q2 (simplified): minimum supply cost per part for large-region brass
/// parts. PART ⋈ PARTSUPP ⋈ SUPPLIER ⋈ NATION ⋈ REGION.
pub fn q2() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let p = b.table("part");
    let ps = b.table("partsupp");
    let s = b.table("supplier");
    let n = b.table("nation");
    let r = b.table("region");
    b.join(p, part::PARTKEY, ps, partsupp::PARTKEY);
    b.join(ps, partsupp::SUPPKEY, s, supplier::SUPPKEY);
    b.join(s, supplier::NATIONKEY, n, nation::NATIONKEY);
    b.join(n, nation::REGIONKEY, r, region::REGIONKEY);
    b.filter(p, Expr::col(p, part::SIZE).eq(Expr::lit(15i64)));
    b.filter(p, Expr::col(p, part::TYPE).like("%BRASS"));
    b.filter(r, Expr::col(r, region::NAME).eq(Expr::lit("EUROPE")));
    b.aggregate(
        &[(p, part::PARTKEY)],
        vec![AggFunc::Min(ColId::new(ps, partsupp::SUPPLYCOST))],
    );
    b.order_by(0, false);
    build(b)
}

/// Q3: shipping-priority revenue per order for one market segment.
/// CUSTOMER ⋈ ORDERS ⋈ LINEITEM.
pub fn q3() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    let l = b.table("lineitem");
    b.join(c, customer::CUSTKEY, o, orders::CUSTKEY);
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.filter(
        c,
        Expr::col(c, customer::MKTSEGMENT).eq(Expr::lit("BUILDING")),
    );
    b.filter(
        o,
        Expr::col(o, orders::ORDERDATE).lt(Expr::lit(Value::Date(1200))),
    );
    b.filter(
        l,
        Expr::col(l, lineitem::SHIPDATE).gt(Expr::lit(Value::Date(1200))),
    );
    b.aggregate(
        &[(l, lineitem::ORDERKEY)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    b.order_by(1, true);
    build(b)
}

/// Q4: order-priority checking — late lineitems per priority class.
/// ORDERS ⋈ LINEITEM.
pub fn q4() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let o = b.table("orders");
    let l = b.table("lineitem");
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.filter(
        o,
        Expr::col(o, orders::ORDERDATE)
            .between(Expr::lit(Value::Date(800)), Expr::lit(Value::Date(890))),
    );
    // l_commitdate < l_receiptdate: a column-column predicate the
    // optimizer can only default-estimate — an estimation-error source.
    b.filter(
        l,
        Expr::col(l, lineitem::COMMITDATE).lt(Expr::col(l, lineitem::RECEIPTDATE)),
    );
    b.aggregate(&[(o, orders::ORDERPRIORITY)], vec![AggFunc::Count]);
    b.order_by(0, false);
    build(b)
}

/// Q5: local supplier volume. CUSTOMER ⋈ ORDERS ⋈ LINEITEM ⋈ SUPPLIER ⋈
/// NATION ⋈ REGION, with the customer and supplier forced into the same
/// nation.
pub fn q5() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    let l = b.table("lineitem");
    let s = b.table("supplier");
    let n = b.table("nation");
    let r = b.table("region");
    b.join(c, customer::CUSTKEY, o, orders::CUSTKEY);
    b.join(l, lineitem::ORDERKEY, o, orders::ORDERKEY);
    b.join(l, lineitem::SUPPKEY, s, supplier::SUPPKEY);
    b.join(c, customer::NATIONKEY, s, supplier::NATIONKEY);
    b.join(s, supplier::NATIONKEY, n, nation::NATIONKEY);
    b.join(n, nation::REGIONKEY, r, region::REGIONKEY);
    b.filter(r, Expr::col(r, region::NAME).eq(Expr::lit("ASIA")));
    b.filter(
        o,
        Expr::col(o, orders::ORDERDATE)
            .between(Expr::lit(Value::Date(0)), Expr::lit(Value::Date(365))),
    );
    b.aggregate(
        &[(n, nation::NAME)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    b.order_by(1, true);
    build(b)
}

/// Q7: volume shipping between two nations (NATION self-join).
pub fn q7() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let s = b.table("supplier");
    let l = b.table("lineitem");
    let o = b.table("orders");
    let c = b.table("customer");
    let n1 = b.table("nation");
    let n2 = b.table("nation");
    b.join(s, supplier::SUPPKEY, l, lineitem::SUPPKEY);
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.join(c, customer::CUSTKEY, o, orders::CUSTKEY);
    b.join(s, supplier::NATIONKEY, n1, nation::NATIONKEY);
    b.join(c, customer::NATIONKEY, n2, nation::NATIONKEY);
    let two = vec![Value::str("FRANCE"), Value::str("GERMANY")];
    b.filter(n1, Expr::col(n1, nation::NAME).in_list(two.clone()));
    b.filter(n2, Expr::col(n2, nation::NAME).in_list(two));
    b.filter(
        l,
        Expr::col(l, lineitem::SHIPDATE)
            .between(Expr::lit(Value::Date(730)), Expr::lit(Value::Date(1460))),
    );
    b.aggregate(
        &[(n1, nation::NAME), (n2, nation::NAME)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    b.order_by(0, false);
    build(b)
}

/// Q8: national market share — the widest join in the suite (8 tables,
/// two NATION references).
pub fn q8() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let p = b.table("part");
    let s = b.table("supplier");
    let l = b.table("lineitem");
    let o = b.table("orders");
    let c = b.table("customer");
    let n1 = b.table("nation"); // customer nation, restricted by region
    let n2 = b.table("nation"); // supplier nation, grouped
    let r = b.table("region");
    b.join(p, part::PARTKEY, l, lineitem::PARTKEY);
    b.join(s, supplier::SUPPKEY, l, lineitem::SUPPKEY);
    b.join(l, lineitem::ORDERKEY, o, orders::ORDERKEY);
    b.join(o, orders::CUSTKEY, c, customer::CUSTKEY);
    b.join(c, customer::NATIONKEY, n1, nation::NATIONKEY);
    b.join(n1, nation::REGIONKEY, r, region::REGIONKEY);
    b.join(s, supplier::NATIONKEY, n2, nation::NATIONKEY);
    b.filter(r, Expr::col(r, region::NAME).eq(Expr::lit("AMERICA")));
    b.filter(
        o,
        Expr::col(o, orders::ORDERDATE)
            .between(Expr::lit(Value::Date(730)), Expr::lit(Value::Date(1460))),
    );
    b.filter(
        p,
        Expr::col(p, part::TYPE).eq(Expr::lit("ECONOMY ANODIZED STEEL")),
    );
    b.aggregate(
        &[(n2, nation::NAME)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    b.order_by(0, false);
    build(b)
}

/// Q9: product-type profit. PART ⋈ SUPPLIER ⋈ LINEITEM ⋈ PARTSUPP ⋈
/// ORDERS ⋈ NATION, with a LIKE on p_name.
pub fn q9() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let p = b.table("part");
    let s = b.table("supplier");
    let l = b.table("lineitem");
    let ps = b.table("partsupp");
    let o = b.table("orders");
    let n = b.table("nation");
    b.join(s, supplier::SUPPKEY, l, lineitem::SUPPKEY);
    b.join(ps, partsupp::SUPPKEY, l, lineitem::SUPPKEY);
    b.join(ps, partsupp::PARTKEY, l, lineitem::PARTKEY);
    b.join(p, part::PARTKEY, l, lineitem::PARTKEY);
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.join(s, supplier::NATIONKEY, n, nation::NATIONKEY);
    b.filter(p, Expr::col(p, part::NAME).like("%green%"));
    b.aggregate(
        &[(n, nation::NAME)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE))],
    );
    b.order_by(0, false);
    build(b)
}

/// Q10 with a parameter marker: the paper's robustness experiment (§5.1)
/// replaces the literal of the LINEITEM selection with a marker, forcing
/// the optimizer onto a default selectivity. Here the predicate is
/// `l_quantity <= ?0`, whose true selectivity sweeps 0→100% as the bound
/// value sweeps 0→50.
///
/// CUSTOMER ⋈ ORDERS ⋈ LINEITEM ⋈ NATION, grouped by customer.
pub fn q10() -> QuerySpec {
    q10_inner(Expr::col(2, lineitem::QUANTITY).le(Expr::Param(0)))
}

/// Q10 with the selectivity literal inlined (the "correct selectivity
/// estimate" reference curve of Figure 11).
pub fn q10_selectivity_literal(quantity: i64) -> QuerySpec {
    q10_inner(Expr::col(2, lineitem::QUANTITY).le(Expr::lit(quantity)))
}

fn q10_inner(lineitem_pred: Expr) -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    let l = b.table("lineitem");
    let n = b.table("nation");
    debug_assert_eq!(l, 2, "q10 lineitem predicate references table 2");
    b.join(c, customer::CUSTKEY, o, orders::CUSTKEY);
    b.join(l, lineitem::ORDERKEY, o, orders::ORDERKEY);
    b.join(c, customer::NATIONKEY, n, nation::NATIONKEY);
    b.filter(l, lineitem_pred);
    b.aggregate(
        &[(c, customer::CUSTKEY)],
        vec![
            AggFunc::Sum(ColId::new(l, lineitem::EXTENDEDPRICE)),
            AggFunc::Count,
        ],
    );
    b.order_by(1, true);
    build(b)
}

/// Q11: important stock per part in one nation.
/// PARTSUPP ⋈ SUPPLIER ⋈ NATION.
pub fn q11() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let ps = b.table("partsupp");
    let s = b.table("supplier");
    let n = b.table("nation");
    b.join(ps, partsupp::SUPPKEY, s, supplier::SUPPKEY);
    b.join(s, supplier::NATIONKEY, n, nation::NATIONKEY);
    b.filter(n, Expr::col(n, nation::NAME).eq(Expr::lit("GERMANY")));
    b.aggregate(
        &[(ps, partsupp::PARTKEY)],
        vec![AggFunc::Sum(ColId::new(ps, partsupp::SUPPLYCOST))],
    );
    b.order_by(1, true);
    build(b)
}

/// Q18: large-volume customers — CUSTOMER ⋈ ORDERS ⋈ LINEITEM grouped by
/// (customer, order), `HAVING sum(l_quantity) > 120`, top 100.
pub fn q18() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    let l = b.table("lineitem");
    b.join(c, customer::CUSTKEY, o, orders::CUSTKEY);
    b.join(o, orders::ORDERKEY, l, lineitem::ORDERKEY);
    b.aggregate(
        &[(c, customer::CUSTKEY), (o, orders::ORDERKEY)],
        vec![AggFunc::Sum(ColId::new(l, lineitem::QUANTITY))],
    );
    b.having(2, pop_expr::CmpOp::Gt, 120i64);
    b.order_by(2, true);
    b.limit(100);
    build(b)
}

/// The query set used by the paper's figures, by name.
pub fn all_queries() -> Vec<(&'static str, QuerySpec)> {
    vec![
        ("Q2", q2()),
        ("Q3", q3()),
        ("Q4", q4()),
        ("Q5", q5()),
        ("Q7", q7()),
        ("Q8", q8()),
        ("Q9", q9()),
        ("Q11", q11()),
        ("Q18", q18()),
    ]
}

/// The full implemented suite, including the single-table and two-table
/// queries not used by the paper's figures.
pub fn extended_queries() -> Vec<(&'static str, QuerySpec)> {
    let mut qs = vec![
        ("Q1", q1()),
        ("Q6", q6()),
        ("Q12", q12()),
        ("Q14", q14()),
        ("Q16", q16()),
        ("Q17", q17()),
        ("Q19", q19()),
        ("Q22", q22()),
    ];
    qs.extend(all_queries());
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for (name, q) in extended_queries() {
            assert!(q.validate().is_ok(), "{name} invalid");
        }
        assert!(q10().validate().is_ok());
        assert!(q10_selectivity_literal(25).validate().is_ok());
    }

    #[test]
    fn extended_suite_covers_seventeen_queries() {
        assert_eq!(extended_queries().len(), 17);
        assert_eq!(q1().tables.len(), 1);
        assert_eq!(q6().tables.len(), 1);
        assert_eq!(q12().tables.len(), 2);
        assert_eq!(q19().tables.len(), 2);
    }

    #[test]
    fn q10_uses_parameter_marker() {
        let q = q10();
        let params: Vec<usize> = q
            .local_preds
            .iter()
            .flat_map(|(_, e)| e.params_used())
            .collect();
        assert_eq!(params, vec![0]);
        let lit = q10_selectivity_literal(25);
        assert!(lit
            .local_preds
            .iter()
            .all(|(_, e)| e.params_used().is_empty()));
    }

    #[test]
    fn q8_has_eight_tables_with_nation_self_join() {
        let q = q8();
        assert_eq!(q.tables.len(), 8);
        let nations = q.tables.iter().filter(|t| t.table == "nation").count();
        assert_eq!(nations, 2);
    }

    #[test]
    fn query_table_counts() {
        assert_eq!(q2().tables.len(), 5);
        assert_eq!(q3().tables.len(), 3);
        assert_eq!(q4().tables.len(), 2);
        assert_eq!(q5().tables.len(), 6);
        assert_eq!(q7().tables.len(), 6);
        assert_eq!(q9().tables.len(), 6);
        assert_eq!(q11().tables.len(), 3);
        assert_eq!(q18().tables.len(), 3);
        assert_eq!(q10().tables.len(), 4);
    }
}
