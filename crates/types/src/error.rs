//! The engine-wide error type.

use std::fmt;

/// Result alias used throughout the engine.
pub type PopResult<T> = Result<T, PopError>;

/// Errors surfaced by the POP engine.
///
/// Note that a CHECK violation is *not* an error: it is an internal control
/// signal handled by the POP driver (see `pop-exec::ExecSignal`). `PopError`
/// covers genuine failures: unknown tables, type mismatches, malformed
/// queries, unbound parameter markers, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// An expression was applied to values of the wrong type.
    TypeMismatch(String),
    /// A parameter marker was used at runtime without a binding.
    UnboundParameter(usize),
    /// The query specification is malformed (e.g. disconnected join graph).
    InvalidQuery(String),
    /// The optimizer could not produce a plan.
    Planning(String),
    /// A produced physical plan violates a structural invariant (caught by
    /// static plan verification before execution).
    InvalidPlan(String),
    /// A runtime execution failure.
    Execution(String),
    /// Catalog manipulation failure (e.g. duplicate table name).
    Catalog(String),
    /// A per-query resource budget (work units, rows, wall-clock time or
    /// resident bytes) was exceeded; the message names the limit.
    BudgetExceeded(String),
    /// The query was cancelled via a `CancelToken` before it completed.
    Cancelled,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PopError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            PopError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            PopError::UnboundParameter(i) => write!(f, "unbound parameter marker ?{i}"),
            PopError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            PopError::Planning(m) => write!(f, "planning failed: {m}"),
            PopError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            PopError::Execution(m) => write!(f, "execution failed: {m}"),
            PopError::Catalog(m) => write!(f, "catalog error: {m}"),
            PopError::BudgetExceeded(m) => write!(f, "resource budget exceeded: {m}"),
            PopError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for PopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PopError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert_eq!(
            PopError::UnboundParameter(2).to_string(),
            "unbound parameter marker ?2"
        );
    }

    #[test]
    fn guardrail_variants_display() {
        assert_eq!(
            PopError::BudgetExceeded("5 rows over".into()).to_string(),
            "resource budget exceeded: 5 rows over"
        );
        assert_eq!(PopError::Cancelled.to_string(), "query cancelled");
        // Typed errors stay comparable so tests can assert exact outcomes.
        assert_eq!(PopError::Cancelled, PopError::Cancelled);
        assert_ne!(
            PopError::BudgetExceeded("a".into()),
            PopError::BudgetExceeded("b".into())
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PopError::Planning("x".into()));
        assert!(e.to_string().contains("planning"));
    }
}
