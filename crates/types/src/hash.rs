//! The one shared FNV-1a implementation.
//!
//! Several subsystems need a tiny, dependency-free, deterministic 64-bit
//! hash: the planlint robustness-certificate skeleton hash, the
//! optimizer's statistics fingerprint, and display-shortened MV
//! signatures. They all fold bytes through this module so the constants
//! live in exactly one place and the streams stay comparable.

/// FNV-1a 64-bit offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a hash.
pub fn fnv1a_extend(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(FNV1A_PRIME);
    }
}

/// Hash `bytes` in one shot from the offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV1A_OFFSET;
    fnv1a_extend(&mut h, bytes);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), FNV1A_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_matches_one_shot() {
        let mut h = FNV1A_OFFSET;
        fnv1a_extend(&mut h, b"foo");
        fnv1a_extend(&mut h, b"bar");
        assert_eq!(h, fnv1a(b"foobar"));
    }
}
