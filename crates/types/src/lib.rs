//! Fundamental types shared by every crate of the Progressive Optimization
//! (POP) engine: SQL-ish values, rows, schemas, row identifiers and the
//! common error type.
//!
//! The engine is a single-node, in-memory relational system, so values are
//! kept simple: 64-bit integers and floats, interned-ish strings
//! (`Arc<str>`), dates as day numbers, and booleans. `Value` provides a
//! *total* order (`NULL` sorts first, floats via `total_cmp`) so it can be
//! used directly as a sort or join key.

mod error;
mod hash;
mod row;
mod schema;
mod value;

pub use error::{PopError, PopResult};
pub use hash::{fnv1a, fnv1a_extend, FNV1A_OFFSET, FNV1A_PRIME};
pub use row::{Rid, Row};
pub use schema::{ColId, ColumnDef, Schema};
pub use value::{DataType, Value};
