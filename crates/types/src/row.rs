//! Rows and row identifiers.

use crate::Value;
use std::fmt;

/// A row is a flat vector of values. Operators concatenate rows when
/// joining; a node's *column map* (see `pop-plan`) says which (table,
/// column) each position corresponds to.
pub type Row = Vec<Value>;

/// A row identifier: which base table a row came from and its position.
///
/// Rids serve two purposes in POP:
/// * lineage tracking for *eager checking with deferred compensation*
///   (ECDC, §3.3 of the paper): the rids of rows already returned to the
///   application are remembered in a side table, and the re-optimized plan
///   anti-joins against it so no duplicates are returned, and
/// * exactly-once application of side effects across re-optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Identifier of the base table within the catalog.
    pub table: u32,
    /// Row position within the base table.
    pub row: u64,
}

impl Rid {
    /// Construct a rid.
    pub fn new(table: u32, row: u64) -> Self {
        Rid { table, row }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.table, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_ordering_and_display() {
        let a = Rid::new(0, 5);
        let b = Rid::new(1, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "0:5");
    }

    #[test]
    fn rows_are_value_vectors() {
        let r: Row = vec![Value::Int(1), Value::str("x")];
        assert_eq!(r.len(), 2);
    }
}
