//! Schemas and column identifiers.

use crate::DataType;
use std::fmt;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unqualified).
    pub name: String,
    /// Data type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Construct a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition at `idx`.
    pub fn col(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

/// Identifies a column of one of a query's tables: `(query table index,
/// column index within that table)`. The *query table index* is the
/// position of the table reference in the query specification, so
/// self-joins of the same base table are distinguished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId {
    /// Index of the table reference within the query.
    pub table: usize,
    /// Column index within that table's schema.
    pub col: usize,
}

impl ColId {
    /// Construct a column id.
    pub fn new(table: usize, col: usize) -> Self {
        ColId { table, col }
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.c{}", self.table, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.col(0).name, "a");
    }

    #[test]
    fn schema_display() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }

    #[test]
    fn colid_display() {
        assert_eq!(ColId::new(2, 3).to_string(), "t2.c3");
    }
}
