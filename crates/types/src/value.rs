//! SQL-ish values with a total order and hash, suitable as join/sort keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Date stored as a day number (days since an arbitrary epoch).
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single value flowing through the engine.
///
/// `Value` deliberately implements `Eq`, `Ord` and `Hash` with *total*
/// semantics (`Null` compares equal to `Null` and sorts before everything,
/// floats compare via [`f64::total_cmp`]), because the execution engine
/// uses values directly as hash-join and sort keys. Three-valued SQL
/// comparison semantics live in the expression evaluator, not here.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
    /// Date as day number.
    Date(i32),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (ints, floats and dates), used by
    /// arithmetic and range estimation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(f64::from(*d)),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }

    /// SQL comparison: returns `None` if either side is NULL, otherwise the
    /// ordering. Numeric types (int/float/date) compare numerically across
    /// types; other mixed-type comparisons order by type rank.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other))
    }

    /// Total comparison used for sorting and joining.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::{Bool, Date, Float, Int, Null, Str};
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Numeric cross-type comparisons.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(a), Date(b)) => a.cmp(&i64::from(*b)),
            (Date(a), Int(b)) => i64::from(*a).cmp(b),
            (Float(a), Date(b)) => a.total_cmp(&f64::from(*b)),
            (Date(a), Float(b)) => f64::from(*a).total_cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and whole floats/dates that compare equal must hash
            // equally; normalize all numerics to the f64 bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                2u8.hash(state);
                f64::from(*d).to_bits().hash(state);
            }
            Value::Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Int(-5)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(-5));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(3)), None);
        assert_eq!(Value::Int(3).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(3).sql_cmp(&Value::Int(3)), Some(Ordering::Equal));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_eq!(Value::Date(7), Value::Int(7));
        assert_eq!(hash_of(&Value::Date(7)), hash_of(&Value::Int(7)));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Date(10).as_f64(), Some(10.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn data_type_roundtrip() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(format!("{}", DataType::Str), "STR");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(12).to_string(), "@12");
    }
}
