//! Tour of the five checkpoint flavors (§3, Table 1): run the same
//! misestimated query under each flavor and compare how (and when) the
//! violation is detected and recovered from.
//!
//! ```text
//! cargo run --release --example checkpoint_flavors
//! ```

use pop::{CheckFlavor, FlavorSet, PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

fn db() -> Catalog {
    let cat = Catalog::new();
    // customer.grp_a == grp_b == grp_c (a perfect correlation): the
    // optimizer multiplies three 1/4 selectivities and expects 78 rows,
    // but 1250 qualify.
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
            ("grp_c", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.project(&[(c, 0), (o, 0)]);
    let query = b.build()?;

    let flavors: [(&str, FlavorSet); 5] = [
        ("none (static)", FlavorSet::none()),
        ("LC + LCEM (default)", FlavorSet::default()),
        ("ECB only", FlavorSet::only(CheckFlavor::Ecb)),
        ("ECDC only", FlavorSet::only(CheckFlavor::Ecdc)),
        (
            "everything",
            FlavorSet {
                lc: true,
                lcem: true,
                ecb: true,
                ecwc: true,
                ecdc: true,
            },
        ),
    ];

    println!(
        "{:<22} {:>10} {:>7} {:>10} {:>18}",
        "flavors", "work", "reopts", "rows", "violation"
    );
    for (label, set) in flavors {
        let mut cfg = PopConfig {
            enabled: set.any(),
            ..PopConfig::default()
        };
        cfg.optimizer.flavors = set;
        let exec = PopExecutor::new(db(), cfg)?;
        let res = exec.run(&query, &Params::none())?;
        let violation = res
            .report
            .steps
            .iter()
            .filter_map(|s| s.violation.as_ref())
            .map(|v| format!("{} ({:?})", v.flavor, v.observed))
            .next()
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<22} {:>10.0} {:>7} {:>10} {:>18}",
            label,
            res.report.total_work,
            res.report.reopt_count,
            res.rows.len(),
            violation
        );
    }
    println!("\nAll configurations return the same 12,500 rows; they differ in");
    println!("when the misestimate is caught and how much work is reusable.");
    Ok(())
}
