//! The §6 case study in miniature: correlated columns break the
//! optimizer's independence assumption, producing orders-of-magnitude
//! cardinality underestimates; POP detects and repairs the resulting
//! plans mid-flight.
//!
//! ```text
//! cargo run --release --example correlated_dmv
//! ```

use pop::{PopConfig, PopExecutor};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::Params;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 0.002; // 16k cars / 12k owners
    let mut cfg = PopConfig::default();
    cfg.cost_model.mem_rows = 4000.0; // memory budget scaled with the data
    let mut static_cfg = PopConfig::without_pop();
    static_cfg.cost_model.mem_rows = 4000.0;

    let with_pop = PopExecutor::new(dmv_catalog(scale)?, cfg)?;
    let without = PopExecutor::new(dmv_catalog(scale)?, static_cfg)?;

    println!("Running the 39-query DMV workload with and without POP...\n");
    let mut improved = 0;
    let mut best: (String, f64) = (String::new(), 1.0);
    let mut total_pop = 0.0;
    let mut total_static = 0.0;
    for q in dmv_queries() {
        let a = with_pop.run(&q.spec, &Params::none())?;
        let b = without.run(&q.spec, &Params::none())?;
        let speedup = b.report.total_work / a.report.total_work;
        total_pop += a.report.total_work;
        total_static += b.report.total_work;
        if speedup > 1.005 {
            improved += 1;
            println!(
                "{}: {:.2}x faster with POP ({} re-optimization{})",
                q.name,
                speedup,
                a.report.reopt_count,
                if a.report.reopt_count == 1 { "" } else { "s" }
            );
        }
        if speedup > best.1 {
            best = (q.name.clone(), speedup);
        }
    }
    println!(
        "\n{improved}/39 queries improved; best: {} at {:.2}x",
        best.0, best.1
    );
    println!(
        "whole workload: {:.0} work units with POP vs {:.0} without ({:.1}% saved)",
        total_pop,
        total_static,
        (1.0 - total_pop / total_static) * 100.0
    );
    Ok(())
}
