//! The paper's §5.1 robustness scenario in miniature: a query with a
//! parameter marker whose actual selectivity is unknown at optimization
//! time. Without POP, the plan chosen for the default selectivity is
//! executed no matter what the marker binds to; with POP, a CHECK on the
//! misestimated edge triggers re-optimization.
//!
//! ```text
//! cargo run --release --example parameter_markers
//! ```

use pop::{PopConfig, PopExecutor};
use pop_expr::Params;
use pop_tpch::{q10, tpch_catalog};
use pop_types::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sf = 0.002; // 12k lineitems
                    // Default selectivity for the marker predicate: highly selective, as
                    // for an indexed column (see EXPERIMENTS.md, Figure 11).
    let mut with_pop = PopConfig::default();
    with_pop.optimizer.selectivity_defaults.range = 0.015;
    let mut without_pop = PopConfig::without_pop();
    without_pop.optimizer.selectivity_defaults.range = 0.015;

    let pop_exec = PopExecutor::new(tpch_catalog(sf)?, with_pop)?;
    let static_exec = PopExecutor::new(tpch_catalog(sf)?, without_pop)?;

    // TPC-H Q10 with `l_quantity <= ?0`: the marker's value decides the
    // true selectivity (quantity is uniform in 1..=50).
    let query = q10();

    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>8}",
        "bound", "sel(true)", "work with POP", "work w/o POP", "reopts"
    );
    for bound in [2i64, 10, 25, 50] {
        let params = Params::new(vec![Value::Int(bound)]);
        let a = pop_exec.run(&query, &params)?;
        let b = static_exec.run(&query, &params)?;
        println!(
            "{:>6} {:>9}% {:>14.0} {:>14.0} {:>8}",
            bound,
            bound * 2,
            a.report.total_work,
            b.report.total_work,
            a.report.reopt_count
        );
    }
    println!("\nAs the bound value grows, the static plan (chosen for the");
    println!("default estimate) degrades steeply, while POP detects the");
    println!("misestimate at a checkpoint and switches plans.");
    Ok(())
}
