//! Quickstart: build a small database, run a query under POP, inspect the
//! execution report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pop::{PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::{AggFunc, QueryBuilder};
use pop_storage::{Catalog, IndexKind};
use pop_types::{ColId, DataType, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create tables.
    let catalog = Catalog::new();
    catalog.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("region", DataType::Str),
            ("segment", DataType::Int),
        ]),
        (0..2000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(["NORTH", "SOUTH", "EAST", "WEST"][(i % 4) as usize]),
                    Value::Int(i % 10),
                ]
            })
            .collect(),
    )?;
    catalog.create_table(
        "orders",
        Schema::from_pairs(&[
            ("oid", DataType::Int),
            ("cust", DataType::Int),
            ("amount", DataType::Float),
        ]),
        (0..40_000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 2000),
                    Value::Float(((i * 37) % 500) as f64),
                ]
            })
            .collect(),
    )?;
    // Indexes make index nested-loop joins available to the optimizer.
    catalog.create_index("orders", "cust", IndexKind::Hash)?;
    catalog.create_index("customer", "cid", IndexKind::Hash)?;

    // 2. Create the executor (analyzes statistics) with default POP
    //    settings: LC + LCEM checkpoints, at most 3 re-optimizations.
    let exec = PopExecutor::new(catalog, PopConfig::default())?;

    // 3. Build a query: total order amount per segment for one region.
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(c, Expr::col(c, 1).eq(Expr::lit("NORTH")));
    b.aggregate(
        &[(c, 2)],
        vec![AggFunc::Count, AggFunc::Sum(ColId::new(o, 2))],
    );
    b.order_by(0, false);
    let query = b.build()?;

    // 4. Inspect the plan...
    println!("plan:\n{}", exec.explain(&query, &Params::none())?);

    // 5. ...and run it.
    let result = exec.run(&query, &Params::none())?;
    println!("segment  orders  total_amount");
    for row in &result.rows {
        println!("{:>7}  {:>6}  {:>12}", row[0], row[1], row[2]);
    }
    println!(
        "\nwork: {:.0} units, re-optimizations: {}",
        result.report.total_work, result.report.reopt_count
    );
    Ok(())
}
