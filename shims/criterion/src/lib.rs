//! Offline shim for `criterion`.
//!
//! The build container cannot fetch crates.io, so this crate provides a
//! small wall-clock harness with the criterion API the workspace uses:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is calibrated so one sample takes at least ~2ms, then
//! `sample_size` samples are timed and min/median/max per-iteration
//! times are reported on stdout in a `name  time: [lo med hi]` line.
//! There is no HTML report, outlier analysis, or saved baseline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, D: ?Sized, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &D),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (upstream writes summary reports here; the shim
    /// has already printed every line, so this just consumes the group).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion accepted wherever an id is expected (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm up and calibrate: grow the per-sample iteration count until one
    // sample takes at least ~2ms, so short routines are not all timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        assert!(
            b.elapsed > Duration::ZERO || iters == 0,
            "benchmark {label} never called Bencher::iter"
        );
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let lo = per_iter[0];
    let med = per_iter[per_iter.len() / 2];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]  ({samples} samples x {iters} iters)",
        fmt_time(lo),
        fmt_time(med),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main()` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran >= 3);
    }
}
