//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small API slice it uses: `RwLock` and `Mutex`
//! whose guards are returned directly (no `Result`, poisoning is
//! translated into a panic, which matches parking_lot's no-poisoning
//! behaviour closely enough for this codebase).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with the `parking_lot::RwLock` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with the `parking_lot::Mutex` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
