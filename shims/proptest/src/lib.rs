//! Offline shim for `proptest`.
//!
//! The build container cannot fetch crates.io, so this crate provides a
//! deterministic, non-shrinking subset of the proptest API the workspace
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, range and string-pattern strategies,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, tuple
//! strategies and `.prop_map`.
//!
//! Semantics differences vs. upstream worth knowing:
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the assertion that fired;
//! * the default number of cases is 64 (upstream: 256) to keep the suite
//!   fast on small CI machines; `ProptestConfig::with_cases` overrides;
//! * string strategies accept only the `[class]{m,n}` / `\PC{m,n}`
//!   pattern shapes the workspace actually uses.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, wide-magnitude floats.
            let unit = ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64;
            let mag = (unit * 600.0) - 300.0; // exponent in [-300, 300)
            let mantissa = ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64;
            (mantissa * 2.0 - 1.0) * 10f64.powf(mag / 10.0)
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `Vec` of values from `element`, with length in `sizes`
    /// (half-open, like upstream's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `BTreeSet` of values from `element`; the target size is drawn from
    /// `sizes`, and duplicates may make the realized set smaller.
    pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.sizes.clone());
            let mut out = BTreeSet::new();
            // Bounded attempts: sparse domains may not reach the target.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        sizes: Range<usize>,
    }

    /// `BTreeMap` with keys/values from the given strategies.
    pub fn btree_map<K, V>(key: K, value: V, sizes: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, sizes }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.usize_in(self.sizes.clone());
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, otherwise `Some` of `element`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prop {
    //! The `prop::` path used by `use proptest::prelude::*` call sites.
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property. Like upstream, this returns
/// `Err(TestCaseError)` from the enclosing function rather than
/// panicking, so it composes with `?` and helper closures returning
/// [`test_runner::TestCaseResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

/// Skip cases not meeting a precondition (they are not counted as runs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` test-block macro: runs each property over
/// `ProptestConfig::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut ran: u32 = 0;
                // Rejected cases (prop_assume!) retry with fresh inputs,
                // up to a bounded number of attempts.
                for _attempt in 0..config.cases.saturating_mul(16) {
                    if ran >= config.cases {
                        break;
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let case = move || {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome: $crate::test_runner::TestCaseResult = case();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
                assert!(
                    ran > 0,
                    "property {}: every generated case was rejected",
                    stringify!($name)
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, 5u32..6), flag in any::<bool>()) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b, 5);
            let _ = flag;
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(prop::option::of(0i64..3), 0..8),
            x in prop_oneof![Just(1i64), 10i64..20, any::<i64>().prop_map(|n| n.wrapping_abs())],
        ) {
            prop_assert!(v.len() < 8);
            for item in v.iter().flatten() {
                prop_assert!((0..3).contains(item));
            }
            let _ = x;
        }

        #[test]
        fn string_patterns(s in "[ab]{0,4}", t in "\\PC{0,5}") {
            prop_assert!(s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!(t.chars().count() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_respected(seen in 0i64..100) {
            let _ = seen;
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0i64..1000, 3..10);
        let a: Vec<i64> = s.generate(&mut TestRng::from_name("x"));
        let b: Vec<i64> = s.generate(&mut TestRng::from_name("x"));
        assert_eq!(a, b);
    }
}
