//! The [`Strategy`] trait and the primitive strategies: constants, maps,
//! unions, numeric ranges, tuples and string patterns.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A boxed, type-erased strategy (what `.boxed()` returns).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.sample(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.sample(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String literals are pattern strategies. Supported shapes (the ones
/// this workspace uses): `[class]{m,n}` where the class mixes literal
/// characters and `a-z` ranges, and `\PC{m,n}` for printable characters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, reps) = parse_pattern(self);
        let len = rng.usize_in(reps.0..reps.1 + 1);
        (0..len)
            .map(|_| alphabet[rng.usize_in(0..alphabet.len())])
            .collect()
    }
}

/// Split a pattern into its alphabet and `(min, max)` repetition counts.
fn parse_pattern(pat: &str) -> (Vec<char>, (usize, usize)) {
    let (alphabet, rest) = if let Some(body) = pat.strip_prefix('[') {
        let close = body.find(']').unwrap_or_else(|| bad_pattern(pat));
        (parse_class(&body[..close], pat), &body[close + 1..])
    } else if let Some(rest) = pat.strip_prefix("\\PC") {
        // Printable ASCII, like upstream's \PC minus exotic unicode.
        ((0x20u8..0x7f).map(char::from).collect(), rest)
    } else {
        bad_pattern(pat)
    };
    (alphabet, parse_reps(rest, pat))
}

/// Expand a character class body: literal chars plus `a-z` style ranges.
fn parse_class(body: &str, pat: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            if lo > hi {
                bad_pattern(pat)
            }
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        bad_pattern(pat)
    }
    out
}

/// Parse the `{m,n}` suffix.
fn parse_reps(rest: &str, pat: &str) -> (usize, usize) {
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pat));
    let (lo, hi) = body.split_once(',').unwrap_or_else(|| bad_pattern(pat));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad_pattern(pat));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad_pattern(pat));
    assert!(lo <= hi, "bad repetition range in pattern {pat:?}");
    (lo, hi)
}

fn bad_pattern(pat: &str) -> ! {
    panic!(
        "proptest shim: unsupported string pattern {pat:?} \
         (supported: \"[class]{{m,n}}\" and \"\\\\PC{{m,n}}\")"
    )
}
