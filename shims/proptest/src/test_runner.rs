//! Test configuration and the deterministic RNG driving generation.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::Range;

/// Why a single test case did not pass: a failed assertion, or a
/// `prop_assume!` rejection (the case is skipped, not failed).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!` of this condition.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection of the given condition.
    pub fn reject(cond: impl Into<String>) -> Self {
        TestCaseError::Reject(cond.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(c) => write!(f, "rejected: {c}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one test case; `prop_assert!` returns early with `Err`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick on the small
        // CI machines this shim targets while still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generation RNG: each property gets a stream seeded from
/// its own name, so failures reproduce run-to-run and test order does not
/// perturb the values any property sees.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed a stream from a property name (FNV-1a over the name bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from any range the `rand` shim can sample.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Uniform `usize` from a possibly-empty half-open range (empty
    /// ranges — e.g. a `0..0` collection size — yield the start).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.is_empty() {
            range.start
        } else {
            self.0.gen_range(range)
        }
    }
}
