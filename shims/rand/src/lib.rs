//! Offline shim for `rand`, providing the slice of the 0.8 API the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic, so the data generators and workloads built on it are
//! reproducible across runs (they do not need to match upstream `rand`'s
//! stream, only to be stable).

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor trait (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range type (shim of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// RNG methods (shim of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsMut<rngs::StdRng>,
    {
        range.sample(self.as_mut())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

pub mod rngs {
    //! RNG implementations.
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (shim of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl AsMut<StdRng> for StdRng {
        fn as_mut(&mut self) -> &mut StdRng {
            self
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// Unbiased uniform draw in `[0, n)` via Lemire-style rejection.
fn uniform_below(rng: &mut rngs::StdRng, n: u64) -> u64 {
    assert!(n > 0, "empty sample range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next();
        // Reject the final partial block to remove modulo bias.
        if v >= threshold || threshold == 0 {
            return v % n;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = ((rng.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut rngs::StdRng) -> f32 {
        let r: f64 = ((self.start as f64)..(self.end as f64)).sample(rng);
        r as f32
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-25i64..=25);
            assert!((-25..=25).contains(&v));
            let u = r.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequencies() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(r.gen_range(0..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
