//! Offline shim for `serde`, reduced to what this workspace needs:
//! a [`Serialize`] trait that lowers values to an in-memory
//! [`JsonValue`] tree, plus `#[derive(Serialize)]` for plain structs
//! (provided by the sibling `serde_derive` proc-macro shim).
//!
//! `serde_json` (also shimmed) renders the tree to text.

// The derive emits `impl serde::Serialize`; make that path resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered like Rust's `{}` for the source type).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

/// Types that can lower themselves to a [`JsonValue`].
pub trait Serialize {
    /// Lower to a JSON tree.
    fn to_json_value(&self) -> JsonValue;
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Number(self.to_string())
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                if self.is_finite() {
                    JsonValue::Number(format!("{self}"))
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    JsonValue::Null
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3i64.to_json_value(), JsonValue::Number("3".into()));
        assert_eq!(2.5f64.to_json_value(), JsonValue::Number("2.5".into()));
        assert_eq!(f64::NAN.to_json_value(), JsonValue::Null);
        assert_eq!(true.to_json_value(), JsonValue::Bool(true));
        assert_eq!(
            Some("x".to_string()).to_json_value(),
            JsonValue::String("x".into())
        );
        assert_eq!(None::<f64>.to_json_value(), JsonValue::Null);
    }

    #[test]
    fn containers() {
        assert_eq!(
            vec![1u64, 2].to_json_value(),
            JsonValue::Array(vec![
                JsonValue::Number("1".into()),
                JsonValue::Number("2".into())
            ])
        );
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct S {
            a: i64,
            b: String,
            c: Vec<f64>,
        }
        let v = S {
            a: 1,
            b: "hi".into(),
            c: vec![0.5],
        }
        .to_json_value();
        assert_eq!(
            v,
            JsonValue::Object(vec![
                ("a".into(), JsonValue::Number("1".into())),
                ("b".into(), JsonValue::String("hi".into())),
                (
                    "c".into(),
                    JsonValue::Array(vec![JsonValue::Number("0.5".into())])
                ),
            ])
        );
    }
}
