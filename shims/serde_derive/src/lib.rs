//! Offline shim for `serde_derive`: `#[derive(Serialize)]` for structs
//! with named fields, written directly against `proc_macro` (the build
//! container cannot fetch `syn`/`quote`).
//!
//! The generated impl lowers each field in declaration order into a
//! `serde::JsonValue::Object`. Enums, tuple structs, generics and serde
//! attributes are not supported — the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) = parse_struct(&tokens);
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push((\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f})));\n"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::JsonValue {{\n\
                 let mut fields: Vec<(String, serde::JsonValue)> = Vec::new();\n\
                 {pushes}\
                 serde::JsonValue::Object(fields)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Extract the struct name and its field names from the token stream.
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<String>) {
    let mut iter = tokens.iter().peekable();
    // Skip attributes and visibility up to the `struct` keyword.
    for tt in iter.by_ref() {
        if matches!(tt, TokenTree::Ident(i) if i.to_string() == "struct") {
            break;
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive(Serialize): expected struct name, got {other:?}"),
    };
    let body = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive(Serialize): struct {name} must have named fields"));
    (name, field_names(body))
}

/// Field names: the identifier immediately before each top-level single
/// `:` (the `::` of type paths is recognized by its joint spacing and
/// skipped).
fn field_names(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize; // inside generic angle brackets of a field type
    let mut last_ident: Option<String> = None;
    let mut in_path_sep = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ':' if in_path_sep => in_path_sep = false,
                ':' if p.spacing() == proc_macro::Spacing::Joint => in_path_sep = true,
                ':' if depth == 0 => {
                    if let Some(name) = last_ident.take() {
                        names.push(name);
                    }
                }
                ',' if depth == 0 => last_ident = None,
                _ => {}
            },
            TokenTree::Ident(i) => {
                let s = i.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    names
}
