//! Offline shim for `serde_json`: renders the serde shim's
//! [`JsonValue`] tree as (pretty) JSON text.

use serde::{JsonValue, Serialize};
use std::fmt;

/// Serialization error. The shim's rendering is infallible, but the type
/// keeps call sites (`serde_json::to_string_pretty(..)?` / `match`) intact.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Render a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_value(v: &JsonValue, level: usize, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(n),
        JsonValue::String(s) => write_escaped(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(level + 1, out);
                write_value(item, level + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push(']');
        }
        JsonValue::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                indent(level + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_value(item, level + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push('}');
        }
    }
}

fn write_compact(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(n),
        JsonValue::String(s) => write_escaped(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        label: String,
    }

    #[test]
    fn pretty_roundtrip_shape() {
        let p = Point {
            x: 1.5,
            label: "a\"b".into(),
        };
        let s = to_string_pretty(&p).unwrap();
        assert_eq!(s, "{\n  \"x\": 1.5,\n  \"label\": \"a\\\"b\"\n}");
        assert_eq!(to_string(&p).unwrap(), "{\"x\":1.5,\"label\":\"a\\\"b\"}");
    }

    #[test]
    fn arrays_and_empties() {
        assert_eq!(to_string_pretty(&Vec::<i64>::new()).unwrap(), "[]");
        assert_eq!(to_string(&vec![1i64, 2]).unwrap(), "[1,2]");
    }
}
