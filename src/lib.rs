//! Workspace root crate: re-exports the public API (see `pop`).
pub use pop as api;
