//! The degree of parallelism is a plan property, re-decided on every
//! re-optimization: CHECK violations feed observed cardinalities back
//! into the parallelize pass, which may **widen** a region (input much
//! larger than estimated — more morsels to go around), **narrow** it, or
//! **drop** it entirely (input so small the parallel overhead no longer
//! pays). These tests pin both directions end to end: the violation is
//! raised inside the running region, workers quiesce at morsel
//! boundaries, and the re-planned step shows a different `GATHER` (or
//! none) in the run report.

use pop::{PopConfig, PopExecutor, StatsRegistry, ValidityMode};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

/// `GATHER parts=k` of the first Gather in a rendered plan, if any.
fn gather_parts(plan: &str) -> Option<usize> {
    let at = plan.find("GATHER parts=")?;
    let rest = &plan[at + "GATHER parts=".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn parallel_config(threads: usize) -> PopConfig {
    let mut cfg = PopConfig::default();
    cfg.optimizer.threads = threads;
    cfg.optimizer.min_parallel_rows = 0.0;
    cfg
}

/// Stale statistics hide 50x growth of the probe input: the initial plan
/// parallelizes at the floor DOP (the estimated input is a single
/// morsel), the spill check fires mid-region, and the re-planned region
/// — now sized from the observed cardinality — runs wider.
#[test]
fn violation_widens_region_dop() {
    let cat = Catalog::new();
    cat.create_table(
        "users",
        Schema::from_pairs(&[("uid", DataType::Int), ("segment", DataType::Int)]),
        (0..2000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 50)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "events",
        Schema::from_pairs(&[("eid", DataType::Int), ("uid", DataType::Int)]),
        (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
            .collect(),
    )
    .unwrap();
    cat.create_index("events", "uid", IndexKind::Hash).unwrap();
    cat.create_index("users", "uid", IndexKind::Hash).unwrap();
    let stats = StatsRegistry::new();
    stats.analyze_all(&cat).unwrap();
    // 200x growth after RUNSTATS: reality is ~100k events.
    let events = cat.table("events").unwrap();
    events
        .insert(
            (500..100_500)
                .map(|i| vec![Value::Int(i), Value::Int(i % 2000)])
                .collect(),
        )
        .unwrap();
    cat.refresh_indexes("events").unwrap();

    let mut cfg = parallel_config(4);
    // Generous validity ranges: the build-side check tolerates up to
    // 100x the estimate before tripping, so when it does trip the
    // `AtLeast(hi+1)` observation it feeds back is itself large enough
    // to justify more morsels (a tight range would saturate the
    // feedback at a cardinality too small to widen the region).
    cfg.optimizer.validity_mode = ValidityMode::FixedFactor(100.0);
    let exec = PopExecutor::with_stats(cat, stats, cfg);
    let mut b = QueryBuilder::new();
    let u = b.table("users");
    let e = b.table("events");
    b.join(u, 0, e, 1);
    b.project(&[(u, 0), (e, 0)]);
    let q = b.build().unwrap();

    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 100_500, "every event joins one user");
    assert!(
        res.report.reopt_count >= 1,
        "stale stats should trip a checkpoint:\n{}",
        res.report.summary()
    );
    let first = gather_parts(&res.report.steps[0].plan);
    let last = gather_parts(&res.report.steps.last().unwrap().plan);
    match (first, last) {
        (Some(a), Some(b)) => assert!(
            b > a,
            "expected the re-planned region to widen, got {a} -> {b}:\n{}",
            res.report.summary()
        ),
        (None, Some(_)) => {} // serial -> parallel: an even stronger widen
        other => panic!(
            "expected a widened region, got {other:?}:\n{}",
            res.report.summary()
        ),
    }
}

/// The optimizer over-estimates a skewed filter 20x (uniform-distinct
/// heuristic); the region's folded scan CHECK under-runs its validity
/// range, and the re-planned query — now knowing the input is tiny —
/// drops the parallel region entirely.
#[test]
fn violation_drops_region_dop() {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[("cid", DataType::Int), ("flag", DataType::Int)]),
        // Two distinct flag values, but 1 covers only 2.5% of rows: the
        // 1/distinct estimate says 10 000, reality says 500.
        (0..20_000)
            .map(|i| vec![Value::Int(i), Value::Int(i64::from(i % 40 == 0))])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..30_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 20_000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();

    let mut cfg = parallel_config(4);
    cfg.optimizer.min_parallel_rows = 1000.0;
    cfg.optimizer.validity_mode = ValidityMode::FixedFactor(2.0);
    let exec = PopExecutor::new(cat, cfg).unwrap();
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(c, Expr::col(c, 1).eq(Expr::lit(1i64)));
    b.project(&[(c, 0), (o, 0)]);
    let q = b.build().unwrap();

    let res = exec.run(&q, &Params::none()).unwrap();
    // 500 matching customers x 1.5 orders each.
    assert_eq!(res.rows.len(), 750, "wrong join result");
    assert!(
        res.report.reopt_count >= 1,
        "the under-run should trip the folded scan check:\n{}",
        res.report.summary()
    );
    assert!(
        gather_parts(&res.report.steps[0].plan).is_some(),
        "initial plan should parallelize:\n{}",
        res.report.steps[0].plan
    );
    let last = &res.report.steps.last().unwrap().plan;
    assert!(
        gather_parts(last).is_none(),
        "re-planned query should drop the region:\n{last}"
    );
}
