//! Chaos suite: deterministic fault injection, resource budgets and
//! cancellation across the DMV and TPC-H workloads.
//!
//! Every injected failure must leave the engine in a clean state:
//!
//! * errors surface as typed [`PopError`] values — never panics;
//! * no temporary MV leaks out of the catalog on any exit path;
//! * when the run completes despite the fault (spurious checks,
//!   corrupted statistics, graceful degradation), the rows are exactly
//!   the no-fault baseline — ECDC compensation must neither drop nor
//!   duplicate anything;
//! * a fixed fault seed reproduces the identical outcome, byte for byte.

use pop::{
    Budget, CancelToken, FaultKind, FaultPlan, FaultSpec, FlavorSet, PopConfig, PopExecutor,
};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::Params;
use pop_plan::QuerySpec;
use pop_storage::Catalog;
use pop_tpch::{all_queries, tpch_catalog};
use pop_types::{PopError, Value};

const DMV_SCALE: f64 = 0.0003;
const TPCH_SF: f64 = 0.0005;

/// How many occurrences of each hook site the sweep covers.
const SWEEP_DEPTH: u64 = 3;

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// The workload slice the sweep runs: a handful of DMV and TPC-H queries
/// (the full suites run in their own end-to-end tests).
fn workload() -> (Catalog, Vec<(String, QuerySpec)>) {
    let cat = dmv_catalog(DMV_SCALE).unwrap();
    let queries = dmv_queries()
        .into_iter()
        .take(6)
        .map(|q| (q.name, q.spec))
        .collect();
    (cat, queries)
}

fn tpch_workload() -> (Catalog, Vec<(String, QuerySpec)>) {
    let cat = tpch_catalog(TPCH_SF).unwrap();
    let queries = all_queries()
        .into_iter()
        .take(4)
        .map(|(name, q)| (name.to_string(), q))
        .collect();
    (cat, queries)
}

/// Baseline configuration: no POP, and faults/budget pinned off so the
/// baseline stays correct even when CI exports `POP_FAULT_SEED` (the
/// fixed-seed chaos job) or a `POP_MAX_*` limit.
fn baseline_config() -> PopConfig {
    PopConfig {
        faults: None,
        budget: Budget::unlimited(),
        ..PopConfig::without_pop()
    }
}

/// Baseline rows for each query, computed without POP and without faults.
fn baselines(cat: &Catalog, queries: &[(String, QuerySpec)]) -> Vec<Vec<Vec<Value>>> {
    let exec = PopExecutor::new(cat.clone(), baseline_config()).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            sorted(
                exec.run(q, &Params::none())
                    .unwrap_or_else(|e| panic!("{name} baseline failed: {e}"))
                    .rows,
            )
        })
        .collect()
}

/// Run the sweep over one workload: every fault kind at occurrence
/// indices `0..SWEEP_DEPTH`, against every query.
fn sweep(cat: &Catalog, queries: &[(String, QuerySpec)]) {
    let base = baselines(cat, queries);
    for kind in FaultKind::ALL {
        for at in 0..SWEEP_DEPTH {
            let config = PopConfig {
                faults: Some(FaultPlan::single(kind, at)),
                ..PopConfig::default()
            };
            let exec = PopExecutor::new(cat.clone(), config).unwrap();
            for ((name, q), expected) in queries.iter().zip(&base) {
                let what = format!("{name} under {}@{at}", kind.as_str());
                match exec.run(q, &Params::none()) {
                    // Completed despite the fault: the answer must be
                    // exactly the baseline (no drops, no duplicates).
                    Ok(res) => assert_eq!(sorted(res.rows), *expected, "{what}: wrong rows"),
                    // Failed: a typed error is acceptable; a panic would
                    // have aborted the test already.
                    Err(e) => assert!(
                        matches!(e, PopError::Execution(_) | PopError::Planning(_)),
                        "{what}: unexpected error kind: {e}"
                    ),
                }
                // Never a leaked temp MV, on any exit path.
                assert_eq!(exec.catalog().temp_mv_count(), 0, "{what}: leaked temp MV");
            }
        }
    }
}

#[test]
fn chaos_sweep_dmv() {
    let (cat, queries) = workload();
    sweep(&cat, &queries);
}

#[test]
fn chaos_sweep_tpch() {
    let (cat, queries) = tpch_workload();
    sweep(&cat, &queries);
}

/// A compact, fully deterministic description of one run's outcome.
fn fingerprint(exec: &PopExecutor, q: &QuerySpec) -> String {
    match exec.run(q, &Params::none()) {
        Ok(res) => format!(
            "ok rows={:?} reopts={} degraded={} shapes={:?} warnings={:?}",
            sorted(res.rows),
            res.report.reopt_count,
            res.report.degraded,
            res.report
                .steps
                .iter()
                .map(|s| s.shape.clone())
                .collect::<Vec<_>>(),
            res.report.warnings,
        ),
        Err(e) => format!("err {e}"),
    }
}

/// The hook CI's fixed-seed chaos job drives: `POP_FAULT_SEED` flows
/// through `PopConfig::default()` into the injector, and the seeded
/// workload must uphold every invariant. Without the variable the config
/// carries no faults and this is a plain correctness pass.
#[test]
fn env_seeded_sweep_upholds_invariants() {
    let (cat, queries) = workload();
    let base = baselines(&cat, &queries);
    let exec = PopExecutor::new(cat, PopConfig::default()).unwrap();
    for ((name, q), expected) in queries.iter().zip(&base) {
        let what = format!(
            "{name} under env faults {:?}",
            exec.config().faults.as_ref().map(|p| &p.specs)
        );
        match exec.run(q, &Params::none()) {
            Ok(res) => assert_eq!(sorted(res.rows), *expected, "{what}: wrong rows"),
            Err(e) => assert!(
                matches!(e, PopError::Execution(_) | PopError::Planning(_)),
                "{what}: unexpected error kind: {e}"
            ),
        }
        assert_eq!(exec.catalog().temp_mv_count(), 0, "{what}: leaked temp MV");
    }
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let (cat, queries) = workload();
    for seed in [7u64, 0xDEAD_BEEF] {
        let config = PopConfig {
            faults: Some(FaultPlan::from_seed(seed)),
            ..PopConfig::default()
        };
        for (name, q) in &queries {
            let a = fingerprint(&PopExecutor::new(cat.clone(), config.clone()).unwrap(), q);
            let b = fingerprint(&PopExecutor::new(cat.clone(), config.clone()).unwrap(), q);
            assert_eq!(a, b, "{name} under seed {seed} is not reproducible");
        }
    }
}

/// A two-table database with a correlation the optimizer cannot see, so
/// the default query reliably triggers a mid-query re-optimization (same
/// shape as the driver's own regression database).
fn correlated_db() -> Catalog {
    use pop_storage::IndexKind;
    use pop_types::{DataType, Schema};
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
            ("grp_c", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

fn correlated_query() -> QuerySpec {
    use pop_expr::Expr;
    use pop_plan::QueryBuilder;
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.build().unwrap()
}

const CORRELATED_ROWS: usize = 12_500;

/// Graceful degradation: when the *re*-optimization fails, the query
/// keeps its previous plan, completes correctly and reports the fallback.
#[test]
fn reopt_failure_degrades_gracefully() {
    // optfail@1: the second optimizer invocation — the first
    // re-optimization after the correlated misestimate — fails.
    let config = PopConfig {
        faults: Some(FaultPlan::single(FaultKind::OptimizerFail, 1)),
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let res = exec.run(&correlated_query(), &Params::none()).unwrap();
    assert_eq!(res.rows.len(), CORRELATED_ROWS);
    assert!(res.report.degraded, "expected a degradation fallback");
    assert!(
        res.report.warnings.iter().any(|w| w.contains("injected")),
        "degradation warning should name the cause: {:?}",
        res.report.warnings
    );
    assert_eq!(exec.catalog().temp_mv_count(), 0);
    // Degradation must not duplicate rows already returned.
    let mut rows = res.rows;
    rows.sort();
    let n = rows.len();
    rows.dedup();
    assert_eq!(rows.len(), n, "degraded run duplicated rows");
}

/// Regression (RAII cleanup): failing a query mid-reopt with degradation
/// disabled must surface the typed error AND leave zero temp MVs — the
/// harvested materializations of the suspended step are already in the
/// catalog when the failure hits.
#[test]
fn mid_reopt_failure_leaks_no_temp_mvs() {
    let config = PopConfig {
        faults: Some(FaultPlan::single(FaultKind::OptimizerFail, 1)),
        graceful_degradation: false,
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let err = exec
        .run(&correlated_query(), &Params::none())
        .expect_err("injected reopt failure must surface without degradation");
    assert!(matches!(err, PopError::Planning(_)), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0, "temp MVs leaked");
}

/// The first optimization has no fallback: optfail@0 is always fatal.
#[test]
fn initial_optimizer_failure_is_fatal() {
    let config = PopConfig {
        faults: Some(FaultPlan::single(FaultKind::OptimizerFail, 0)),
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let err = exec
        .run(&correlated_query(), &Params::none())
        .expect_err("initial optimization failure cannot degrade");
    assert!(matches!(err, PopError::Planning(_)), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

/// Corrupted statistics may yield a bad plan, never a wrong answer.
#[test]
fn corrupted_stats_keep_answers_correct() {
    let config = PopConfig {
        faults: Some(FaultPlan::single(FaultKind::CorruptStats, 0)),
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let res = exec.run(&correlated_query(), &Params::none()).unwrap();
    assert_eq!(res.rows.len(), CORRELATED_ROWS);
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

/// Spurious CHECK violations cost extra re-optimizations but results
/// stay exact through ECDC/rid compensation.
#[test]
fn spurious_check_violation_preserves_results() {
    let config = PopConfig {
        faults: Some(FaultPlan::single(FaultKind::SpuriousCheck, 0)),
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let res = exec.run(&correlated_query(), &Params::none()).unwrap();
    let mut rows = res.rows;
    rows.sort();
    let n = rows.len();
    rows.dedup();
    assert_eq!(rows.len(), n, "spurious reopt duplicated rows");
    assert_eq!(n, CORRELATED_ROWS);
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

/// The drifting-stats scenario: every CHECK flavor is off, so only the
/// continuous suboptimality monitors stand between the optimizer and the
/// correlated misestimate. The injected monitor fault makes the first
/// monitor trip immediately — simulating statistics drifting out from
/// under a running query — and the stats fault corrupts the cardinality
/// feedback recorded for the re-optimization. The loop must still flag
/// the drift as a monitor violation, re-optimize early and converge to
/// the exact answer.
#[test]
fn drifting_stats_monitor_flags_drift_and_reopts_early() {
    let mut config = PopConfig {
        faults: Some(FaultPlan::new(vec![
            FaultSpec {
                kind: FaultKind::MonitorLie,
                at: 0,
            },
            FaultSpec {
                kind: FaultKind::CorruptStats,
                at: 0,
            },
        ])),
        sample_vet: false,
        ..PopConfig::default()
    };
    config.optimizer.flavors = FlavorSet::none();
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let res = exec.run(&correlated_query(), &Params::none()).unwrap();
    assert_eq!(res.rows.len(), CORRELATED_ROWS);
    assert!(
        res.report.reopt_count >= 1,
        "drift must force an early re-optimization: {:#?}",
        res.report.steps
    );
    let first = &res.report.steps[0];
    assert!(
        !first.monitors.is_empty(),
        "no suboptimality signal recorded: {:#?}",
        res.report.steps
    );
    let v = first.violation.as_ref().expect("first step must suspend");
    assert!(v.monitor, "violation must be monitor-flagged: {v:?}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
    // Corrupted feedback may cost extra iterations, never correctness.
    let mut rows = res.rows;
    rows.sort();
    let n = rows.len();
    rows.dedup();
    assert_eq!(rows.len(), n, "monitor-driven reopt duplicated rows");
}

#[test]
fn work_budget_trips_with_typed_error() {
    let config = PopConfig {
        budget: Budget {
            max_work: Some(10.0),
            ..Budget::default()
        },
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let err = exec
        .run(&correlated_query(), &Params::none())
        .expect_err("a 10-unit work budget cannot cover a 50k-row join");
    assert!(matches!(err, PopError::BudgetExceeded(_)), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

#[test]
fn row_budget_trips_with_typed_error() {
    let config = PopConfig {
        budget: Budget {
            max_rows: Some(100),
            ..Budget::default()
        },
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let err = exec
        .run(&correlated_query(), &Params::none())
        .expect_err("the query returns 12500 rows against a 100-row budget");
    assert!(matches!(err, PopError::BudgetExceeded(_)), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

#[test]
fn resident_byte_budget_trips_with_typed_error() {
    let config = PopConfig {
        budget: Budget {
            max_resident_bytes: Some(64),
            ..Budget::default()
        },
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), config).unwrap();
    let err = exec
        .run(&correlated_query(), &Params::none())
        .expect_err("64 bytes cannot hold any materialized operator state");
    assert!(matches!(err, PopError::BudgetExceeded(_)), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
}

#[test]
fn generous_budget_changes_nothing() {
    let config = PopConfig {
        budget: Budget {
            max_work: Some(1e15),
            max_rows: Some(u64::MAX),
            max_resident_bytes: Some(u64::MAX),
            ..Budget::default()
        },
        ..PopConfig::default()
    };
    let guarded = PopExecutor::new(correlated_db(), config).unwrap();
    let plain = PopExecutor::new(correlated_db(), PopConfig::default()).unwrap();
    let a = sorted(
        guarded
            .run(&correlated_query(), &Params::none())
            .unwrap()
            .rows,
    );
    let b = sorted(
        plain
            .run(&correlated_query(), &Params::none())
            .unwrap()
            .rows,
    );
    assert_eq!(a, b, "an untripped budget must not change results");
}

#[test]
fn cancellation_aborts_with_typed_error() {
    let exec = PopExecutor::new(correlated_db(), PopConfig::default()).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let err = exec
        .run_with(&correlated_query(), &Params::none(), Some(token))
        .expect_err("a pre-cancelled token must abort at the first batch");
    assert!(matches!(err, PopError::Cancelled), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0);
    // An untripped token is inert.
    let live = CancelToken::new();
    let res = exec
        .run_with(&correlated_query(), &Params::none(), Some(live))
        .unwrap();
    assert_eq!(res.rows.len(), CORRELATED_ROWS);
}

/// Storage faults fire mid-stream — including after rows were returned —
/// and must still surface typed and leak-free.
#[test]
fn storage_fault_deep_in_the_stream() {
    for at in [0u64, 10, 100] {
        let config = PopConfig {
            faults: Some(FaultPlan::single(FaultKind::StorageRead, at)),
            ..PopConfig::default()
        };
        let exec = PopExecutor::new(correlated_db(), config).unwrap();
        match exec.run(&correlated_query(), &Params::none()) {
            Ok(res) => assert_eq!(res.rows.len(), CORRELATED_ROWS),
            Err(e) => assert!(matches!(e, PopError::Execution(_)), "{e}"),
        }
        assert_eq!(
            exec.catalog().temp_mv_count(),
            0,
            "storage@{at} leaked a temp MV"
        );
    }
}
