//! Chaos suite for partition-parallel execution: the fault-site sweep of
//! `tests/chaos.rs` re-run with a 4-way worker pool, so every injected
//! failure also exercises region quiesce — bounded exchange queues, fold
//! rendezvous and the scoped worker join.
//!
//! Invariants, on every exit path:
//!
//! * errors surface as typed [`PopError`] values — never panics;
//! * no temporary MV leaks out of the catalog (partial per-partition
//!   harvests must be dropped, never promoted);
//! * when the run completes despite the fault, the rows are exactly the
//!   serial no-fault baseline — neither dropped nor duplicated;
//! * the suite *terminating* is itself the deadlock check: a worker
//!   blocked on a full/empty bounded queue or an abandoned fold
//!   rendezvous would hang the sweep;
//! * a fixed fault seed reproduces the identical outcome.

use pop::{Budget, CancelToken, FaultKind, FaultPlan, PopConfig, PopExecutor};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::Params;
use pop_plan::QuerySpec;
use pop_storage::Catalog;
use pop_tpch::{all_queries, tpch_catalog};
use pop_types::{PopError, Value};

const DMV_SCALE: f64 = 0.0003;
const TPCH_SF: f64 = 0.0005;
const THREADS: usize = 4;

/// How many occurrences of each hook site the sweep covers. Shallower
/// than the serial sweep: every configuration here runs the whole
/// region machinery, which is the expensive part under test.
const SWEEP_DEPTH: u64 = 2;

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// 4-way parallel POP configuration with the region size gate dropped,
/// so the tiny test catalogs actually form parallel regions.
fn parallel_config() -> PopConfig {
    let mut cfg = PopConfig::default();
    cfg.optimizer.threads = THREADS;
    cfg.optimizer.min_parallel_rows = 0.0;
    cfg
}

fn workload() -> (Catalog, Vec<(String, QuerySpec)>) {
    let cat = dmv_catalog(DMV_SCALE).unwrap();
    let queries = dmv_queries()
        .into_iter()
        .take(4)
        .map(|q| (q.name, q.spec))
        .collect();
    (cat, queries)
}

fn tpch_workload() -> (Catalog, Vec<(String, QuerySpec)>) {
    let cat = tpch_catalog(TPCH_SF).unwrap();
    let queries = all_queries()
        .into_iter()
        .take(3)
        .map(|(name, q)| (name.to_string(), q))
        .collect();
    (cat, queries)
}

/// Baseline rows per query: serial, no POP, faults/budget pinned off.
fn baselines(cat: &Catalog, queries: &[(String, QuerySpec)]) -> Vec<Vec<Vec<Value>>> {
    let config = PopConfig {
        faults: None,
        budget: Budget::unlimited(),
        ..PopConfig::without_pop()
    };
    let exec = PopExecutor::new(cat.clone(), config).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            sorted(
                exec.run(q, &Params::none())
                    .unwrap_or_else(|e| panic!("{name} baseline failed: {e}"))
                    .rows,
            )
        })
        .collect()
}

/// Every fault kind at occurrence indices `0..SWEEP_DEPTH`, against every
/// query, at 4 worker threads.
fn sweep(cat: &Catalog, queries: &[(String, QuerySpec)]) {
    let base = baselines(cat, queries);
    for kind in FaultKind::ALL {
        for at in 0..SWEEP_DEPTH {
            let config = PopConfig {
                faults: Some(FaultPlan::single(kind, at)),
                ..parallel_config()
            };
            let exec = PopExecutor::new(cat.clone(), config).unwrap();
            for ((name, q), expected) in queries.iter().zip(&base) {
                let what = format!("{name} x{THREADS} under {}@{at}", kind.as_str());
                match exec.run(q, &Params::none()) {
                    Ok(res) => assert_eq!(sorted(res.rows), *expected, "{what}: wrong rows"),
                    Err(e) => assert!(
                        matches!(e, PopError::Execution(_) | PopError::Planning(_)),
                        "{what}: unexpected error kind: {e}"
                    ),
                }
                assert_eq!(exec.catalog().temp_mv_count(), 0, "{what}: leaked temp MV");
            }
        }
    }
}

#[test]
fn parallel_chaos_sweep_dmv() {
    let (cat, queries) = workload();
    sweep(&cat, &queries);
}

#[test]
fn parallel_chaos_sweep_tpch() {
    let (cat, queries) = tpch_workload();
    sweep(&cat, &queries);
}

#[test]
fn parallel_chaos_is_deterministic_per_seed() {
    let (cat, queries) = workload();
    let fingerprint = |exec: &PopExecutor, q: &QuerySpec| match exec.run(q, &Params::none()) {
        Ok(res) => format!(
            "ok rows={:?} reopts={} degraded={}",
            sorted(res.rows),
            res.report.reopt_count,
            res.report.degraded,
        ),
        Err(e) => format!("err {e}"),
    };
    for seed in [7u64, 0xC0FFEE] {
        let config = PopConfig {
            faults: Some(FaultPlan::from_seed(seed)),
            ..parallel_config()
        };
        for (name, q) in &queries {
            let a = fingerprint(&PopExecutor::new(cat.clone(), config.clone()).unwrap(), q);
            let b = fingerprint(&PopExecutor::new(cat.clone(), config.clone()).unwrap(), q);
            assert_eq!(a, b, "{name} x{THREADS} seed {seed} is not reproducible");
        }
    }
}

/// A two-table database with a correlation the optimizer cannot see —
/// large enough that partition chains actually stream batches (the
/// cancellation token is polled at batch boundaries).
fn correlated_db() -> Catalog {
    use pop_storage::IndexKind;
    use pop_types::{DataType, Schema};
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
        ]),
        (0..5000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 4), Value::Int(i % 4)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

fn correlated_query() -> QuerySpec {
    use pop_expr::Expr;
    use pop_plan::QueryBuilder;
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64))),
    );
    b.build().unwrap()
}

/// Cancellation must quiesce a running region: workers blocked on
/// exchange queues or a fold rendezvous wake up, the scope joins, and
/// nothing leaks.
#[test]
fn parallel_cancellation_quiesces_cleanly() {
    let exec = PopExecutor::new(correlated_db(), parallel_config()).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let err = exec
        .run_with(&correlated_query(), &Params::none(), Some(token))
        .expect_err("a pre-cancelled token must abort");
    assert!(matches!(err, PopError::Cancelled), "{err}");
    assert_eq!(exec.catalog().temp_mv_count(), 0, "cancel leaked a temp MV");
    // An untripped token is inert, and the parallel rows match serial.
    let serial = PopExecutor::new(correlated_db(), PopConfig::default()).unwrap();
    let expected = sorted(
        serial
            .run(&correlated_query(), &Params::none())
            .unwrap()
            .rows,
    );
    let live = CancelToken::new();
    let res = exec
        .run_with(&correlated_query(), &Params::none(), Some(live))
        .unwrap();
    assert_eq!(sorted(res.rows), expected, "live-token rows diverge");
}

/// A storage fault mid-morsel, under a work-stealing pool: tiny morsels
/// force every region into a many-morsel schedule where workers race and
/// steal across home spans, and each task's cloned injector arms the
/// fault inside the morsel chain — so the raise happens mid-task,
/// between morsel boundaries, on whichever worker (owner or thief) runs
/// it. The quiesce and raiser-selection invariants must hold regardless:
/// typed errors or exact baseline rows, no temp-MV leaks, and a
/// schedule-independent outcome across repeated runs.
#[test]
fn parallel_chaos_fault_mid_morsel_under_stealing() {
    let (cat, queries) = tpch_workload();
    let base = baselines(&cat, &queries);
    // Preflight, no faults: this workload at this morsel size must run
    // morsel-driven regions with more morsels than workers — otherwise
    // the sweep below exercises nothing mid-morsel.
    let mut preflight = parallel_config();
    preflight.morsel_size = 16;
    let exec = PopExecutor::new(cat.clone(), preflight).unwrap();
    let morsel_regions: usize = queries
        .iter()
        .map(|(name, q)| {
            let res = exec
                .run(q, &Params::none())
                .unwrap_or_else(|e| panic!("{name} preflight failed: {e}"));
            res.report
                .steps
                .iter()
                .flat_map(|s| s.parallel.iter())
                .filter(|d| d.mode == pop::RegionMode::Morsel && d.morsels > d.dop)
                .count()
        })
        .sum();
    assert!(morsel_regions > 0, "no query ran a morsel-driven region");
    for at in 0..SWEEP_DEPTH {
        let mut config = PopConfig {
            faults: Some(FaultPlan::single(FaultKind::StorageRead, at)),
            ..parallel_config()
        };
        config.morsel_size = 16; // many morsels per worker: steals happen
        let exec = PopExecutor::new(cat.clone(), config.clone()).unwrap();
        for ((name, q), expected) in queries.iter().zip(&base) {
            let what = format!("{name} x{THREADS} morsel16 storage-read@{at}");
            let fingerprint = |e: &PopExecutor| match e.run(q, &Params::none()) {
                Ok(res) => format!(
                    "ok rows={:?} reopts={}",
                    sorted(res.rows),
                    res.report.reopt_count
                ),
                Err(e) => format!("err {e}"),
            };
            let a = fingerprint(&exec);
            match exec.run(q, &Params::none()) {
                Ok(res) => assert_eq!(sorted(res.rows), *expected, "{what}: wrong rows"),
                Err(e) => assert!(
                    matches!(e, PopError::Execution(_) | PopError::Planning(_)),
                    "{what}: unexpected error kind: {e}"
                ),
            }
            assert_eq!(exec.catalog().temp_mv_count(), 0, "{what}: leaked temp MV");
            let b = fingerprint(&PopExecutor::new(cat.clone(), config.clone()).unwrap());
            assert_eq!(a, b, "{what}: outcome depends on the schedule");
        }
    }
}

/// A tight work budget trips mid-region (workers publish their work to
/// the shared governor ledger); the abort must be typed and leak-free.
#[test]
fn parallel_budget_exhaustion_is_clean() {
    let (cat, queries) = workload();
    for max_work in [50.0, 500.0, 5_000.0] {
        let config = PopConfig {
            budget: Budget {
                max_work: Some(max_work),
                ..Budget::unlimited()
            },
            ..parallel_config()
        };
        let exec = PopExecutor::new(cat.clone(), config).unwrap();
        for (name, q) in &queries {
            let what = format!("{name} x{THREADS} budget {max_work}");
            match exec.run(q, &Params::none()) {
                Ok(_) => {}
                Err(e) => assert!(
                    matches!(e, PopError::BudgetExceeded(_) | PopError::Execution(_)),
                    "{what}: unexpected error kind: {e}"
                ),
            }
            assert_eq!(exec.catalog().temp_mv_count(), 0, "{what}: leaked temp MV");
        }
    }
}
