//! Property-based chaos: random fault seeds against the DMV workload at
//! batch sizes 1 and 1024 (the exec-equivalence extremes).
//!
//! For every seed-derived [`FaultPlan`] the engine must uphold the same
//! invariants the directed chaos sweep checks: a run either completes
//! with exactly the no-fault baseline rows (no drops, no duplicates
//! through compensation) or fails with a typed error — and either way
//! the catalog holds zero temporary MVs afterwards.
//!
//! Fault occurrence indices count *hook-site hits*, which depend on the
//! batch size (a scan at batch 1 reaches its read hook far more often),
//! so outcomes are not compared across batch sizes — each size is held
//! to the invariants independently.

use pop::{FaultPlan, PopConfig, PopExecutor};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::Params;
use pop_plan::QuerySpec;
use pop_types::{PopError, Value};
use proptest::prelude::*;
use std::sync::OnceLock;

const DMV_SCALE: f64 = 0.0003;

struct Fixture {
    queries: Vec<(String, QuerySpec)>,
    baselines: Vec<Vec<Vec<Value>>>,
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Workload slice and its no-fault baselines, computed once.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let queries: Vec<(String, QuerySpec)> = dmv_queries()
            .into_iter()
            .take(4)
            .map(|q| (q.name, q.spec))
            .collect();
        // Faults/budget pinned off so the baseline stays correct even
        // under CI's `POP_FAULT_SEED` environment.
        let baseline_config = PopConfig {
            faults: None,
            budget: pop::Budget::unlimited(),
            ..PopConfig::without_pop()
        };
        let exec = PopExecutor::new(dmv_catalog(DMV_SCALE).unwrap(), baseline_config).unwrap();
        let baselines = queries
            .iter()
            .map(|(name, q)| {
                sorted(
                    exec.run(q, &Params::none())
                        .unwrap_or_else(|e| panic!("{name} baseline failed: {e}"))
                        .rows,
                )
            })
            .collect();
        Fixture { queries, baselines }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn seeded_faults_never_leak_or_corrupt(seed in 0u64..u64::MAX) {
        let fx = fixture();
        for batch_size in [1usize, 1024] {
            let config = PopConfig {
                faults: Some(FaultPlan::from_seed(seed)),
                batch_size,
                ..PopConfig::default()
            };
            let exec = PopExecutor::new(dmv_catalog(DMV_SCALE).unwrap(), config).unwrap();
            for ((name, q), expected) in fx.queries.iter().zip(&fx.baselines) {
                let what = format!("{name}, seed {seed}, batch {batch_size}");
                match exec.run(q, &Params::none()) {
                    Ok(res) => prop_assert_eq!(
                        sorted(res.rows),
                        expected.clone(),
                        "{}: wrong rows",
                        what
                    ),
                    Err(e) => prop_assert!(
                        matches!(e, PopError::Execution(_) | PopError::Planning(_)),
                        "{}: unexpected error kind: {}",
                        what,
                        e
                    ),
                }
                prop_assert_eq!(
                    exec.catalog().temp_mv_count(),
                    0,
                    "{}: leaked temp MV",
                    what
                );
            }
        }
    }
}
