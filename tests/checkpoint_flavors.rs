//! End-to-end behaviour of the five checkpoint flavors (§3 of the paper),
//! including ECDC's deferred compensation and exactly-once side effects.

use pop::{CheckFlavor, FlavorSet, PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

/// Catalog with a correlation that breaks independence: grp_a == grp_b,
/// so `grp_a = k AND grp_b = k AND grp_c = k` is underestimated 16x.
fn correlated_db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
            ("grp_c", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

/// SPJ query (pipelined — no aggregation) with the correlated filter.
fn spj_query() -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.project(&[(c, 0), (o, 0)]);
    b.build().unwrap()
}

const EXPECTED_ROWS: usize = 12_500;

fn config_with(flavors: FlavorSet) -> PopConfig {
    let mut cfg = PopConfig::default();
    cfg.optimizer.flavors = flavors;
    cfg
}

fn run_and_check(flavors: FlavorSet, expect_flavor: Option<CheckFlavor>) -> pop::RunReport {
    let exec = PopExecutor::new(correlated_db(), config_with(flavors)).unwrap();
    let q = spj_query();
    let res = exec.run(&q, &Params::none()).unwrap();
    // Correctness: right count, no duplicates.
    assert_eq!(res.rows.len(), EXPECTED_ROWS, "row count");
    let mut rows = res.rows.clone();
    rows.sort();
    rows.dedup();
    assert_eq!(rows.len(), EXPECTED_ROWS, "duplicates returned");
    if let Some(f) = expect_flavor {
        let fired = res
            .report
            .steps
            .iter()
            .filter_map(|s| s.violation.as_ref())
            .any(|v| v.flavor == f);
        assert!(
            fired,
            "expected a {f} violation; steps: {:#?}",
            res.report
                .steps
                .iter()
                .map(|s| (&s.shape, &s.violation))
                .collect::<Vec<_>>()
        );
    }
    res.report
}

#[test]
fn lcem_fires_and_recovers() {
    let report = run_and_check(
        FlavorSet {
            lc: true,
            lcem: true,
            ecb: false,
            ecwc: false,
            ecdc: false,
        },
        Some(CheckFlavor::Lcem),
    );
    assert!(report.reopt_count >= 1);
}

#[test]
fn ecb_fires_before_materialization_completes() {
    let report = run_and_check(
        FlavorSet {
            lc: false,
            lcem: false,
            ecb: true,
            ecwc: false,
            ecdc: false,
        },
        Some(CheckFlavor::Ecb),
    );
    assert!(report.reopt_count >= 1);
    // ECB aborts mid-stream: the observation is a lower bound, not exact.
    let v = report
        .steps
        .iter()
        .filter_map(|s| s.violation.as_ref())
        .find(|v| v.flavor == CheckFlavor::Ecb)
        .expect("ecb violation");
    assert!(
        matches!(v.observed, pop::ObservedCard::AtLeast(_)),
        "ECB must report a lower bound, got {:?}",
        v.observed
    );
}

#[test]
fn ecdc_compensates_already_returned_rows() {
    let report = run_and_check(
        FlavorSet {
            lc: false,
            lcem: false,
            ecb: false,
            ecwc: false,
            ecdc: true,
        },
        Some(CheckFlavor::Ecdc),
    );
    assert!(report.reopt_count >= 1);
    // The pipelined first step returned rows before the violation; the
    // re-optimized step must have compensated (no duplicates asserted in
    // run_and_check). Verify rows were indeed emitted early.
    let first = &report.steps[0];
    assert!(
        first.rows_emitted > 0,
        "ECDC test should emit rows before the violation"
    );
    assert!(first.rows_emitted < EXPECTED_ROWS);
}

#[test]
fn ecwc_checks_below_materializations() {
    // ECWC alone never fires here unless a materialization exists above;
    // enable LC too so sorts/temps appear, then verify ECWC checks are
    // placed and the query still returns correct results.
    let exec = PopExecutor::new(
        correlated_db(),
        config_with(FlavorSet {
            lc: true,
            lcem: true,
            ecb: false,
            ecwc: true,
            ecdc: false,
        }),
    )
    .unwrap();
    let q = spj_query();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), EXPECTED_ROWS);
}

#[test]
fn all_flavors_together_are_consistent() {
    let report = run_and_check(
        FlavorSet {
            lc: true,
            lcem: true,
            ecb: true,
            ecwc: true,
            ecdc: true,
        },
        None,
    );
    assert!(report.reopt_count >= 1);
}

#[test]
fn side_effects_apply_exactly_once_across_reopt() {
    let cat = correlated_db();
    cat.create_table(
        "sink",
        Schema::from_pairs(&[("cid", DataType::Int), ("oid", DataType::Int)]),
        vec![],
    )
    .unwrap();
    let exec = PopExecutor::new(cat, PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.project(&[(c, 0), (o, 0)]);
    b.insert_into("sink");
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    let sink = exec.catalog().table("sink").unwrap();
    assert_eq!(
        sink.row_count(),
        EXPECTED_ROWS,
        "side effect applied wrong number of times (reopts={})",
        res.report.reopt_count
    );
}

#[test]
fn fixed_threshold_mode_fires_on_large_errors() {
    let mut cfg = PopConfig::default();
    cfg.optimizer.validity_mode = pop::ValidityMode::FixedFactor(4.0);
    let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
    let q = spj_query();
    let res = exec.run(&q, &Params::none()).unwrap();
    // 16x misestimate > 4x threshold: must fire.
    assert!(res.report.reopt_count >= 1);
    assert_eq!(res.rows.len(), EXPECTED_ROWS);
}
