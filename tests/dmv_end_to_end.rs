//! End-to-end integration: the 39-query DMV workload (§6 of the paper)
//! with and without POP.

use pop::{FlavorSet, PopConfig, PopExecutor};
use pop_dmv::{
    correlated_marker_params, correlated_marker_query, dmv_catalog, dmv_queries,
    uncorrelated_marker_params,
};
use pop_expr::Params;
use pop_types::Value;

const SCALE: f64 = 0.0003; // 2400 cars / 1800 owners: fast CI scale

fn assert_rows_equal(mut a: Vec<Vec<Value>>, mut b: Vec<Vec<Value>>, what: &str) {
    a.sort();
    b.sort();
    assert_eq!(a.len(), b.len(), "{what}: row count differs");
    for (ra, rb) in a.iter().zip(b.iter()) {
        for (va, vb) in ra.iter().zip(rb.iter()) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    let tol = 1e-6 * (1.0 + x.abs().max(y.abs()));
                    assert!((x - y).abs() <= tol, "{what}: {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{what}: value differs"),
            }
        }
    }
}

#[test]
fn dmv_workload_runs_and_pop_preserves_semantics() {
    let with_pop = PopExecutor::new(dmv_catalog(SCALE).unwrap(), PopConfig::default()).unwrap();
    let without = PopExecutor::new(dmv_catalog(SCALE).unwrap(), PopConfig::without_pop()).unwrap();
    let mut total_reopts = 0usize;
    let mut improved = 0usize;
    let mut ran = 0usize;
    for q in dmv_queries() {
        let a = with_pop
            .run(&q.spec, &Params::none())
            .unwrap_or_else(|e| panic!("{} with POP failed: {e}", q.name));
        let b = without
            .run(&q.spec, &Params::none())
            .unwrap_or_else(|e| panic!("{} without POP failed: {e}", q.name));
        assert_rows_equal(a.rows.clone(), b.rows.clone(), &q.name);
        total_reopts += a.report.reopt_count;
        if a.report.total_work < b.report.total_work {
            improved += 1;
        }
        ran += 1;
    }
    assert_eq!(ran, 39);
    // The correlated predicates must trigger at least some
    // re-optimizations across the workload.
    assert!(
        total_reopts >= 5,
        "expected re-optimizations across the DMV workload, got {total_reopts}"
    );
    // And POP should speed up a nontrivial share of the queries.
    assert!(improved >= 5, "only {improved} queries improved");
}

/// The adversarial correlated-parameter-markers scenario (§5.1): the
/// marker predicate is opaque at optimization time, so the plan is built
/// on default selectivities; the adversarial bindings make the actual
/// cardinality two orders larger. With every CHECK flavor off, only the
/// continuous suboptimality monitor observes the escape — it must flag
/// the drift, force a re-optimization, and still return the exact rows.
/// The control bindings hit the *same* plan with a near-empty actual:
/// no drift, no signal, no re-optimization.
#[test]
fn correlated_markers_pin_monitor_triggered_recovery() {
    let no_check = || {
        let mut cfg = PopConfig::default();
        cfg.optimizer.flavors = FlavorSet::none();
        cfg.sample_vet = false;
        cfg
    };
    let q = correlated_marker_query();
    let exec = PopExecutor::new(dmv_catalog(SCALE).unwrap(), no_check()).unwrap();
    let baseline = PopExecutor::new(dmv_catalog(SCALE).unwrap(), PopConfig::without_pop()).unwrap();

    // Adversarial bindings: monitor-triggered recovery.
    let params = correlated_marker_params();
    let res = exec.run(&q.spec, &params).unwrap();
    let base = baseline.run(&q.spec, &params).unwrap();
    assert!(
        base.rows.len() > 100,
        "adversarial bindings should keep a whole make band: {}",
        base.rows.len()
    );
    assert_rows_equal(res.rows.clone(), base.rows.clone(), &q.name);
    assert!(
        res.report.reopt_count >= 1,
        "monitor should flag the marker-induced drift:\n{}",
        res.report.summary()
    );
    let first = &res.report.steps[0];
    assert!(
        first.violation.as_ref().is_some_and(|v| v.monitor),
        "recovery must be monitor-triggered, not CHECK-triggered:\n{}",
        res.report.summary()
    );
    assert!(
        !first.monitors.is_empty(),
        "no suboptimality signal recorded"
    );

    // Control bindings: same plan, nothing to recover from.
    let control = uncorrelated_marker_params();
    let res = exec.run(&q.spec, &control).unwrap();
    assert!(
        res.rows.is_empty(),
        "MODEL determines MAKE: disjoint bands must select nothing"
    );
    assert_eq!(
        res.report.reopt_count,
        0,
        "no drift, no recovery:\n{}",
        res.report.summary()
    );
}

#[test]
fn dmv_reopt_count_is_bounded_by_config() {
    let exec = PopExecutor::new(dmv_catalog(SCALE).unwrap(), PopConfig::default()).unwrap();
    for q in dmv_queries().into_iter().take(10) {
        let res = exec.run(&q.spec, &Params::none()).unwrap();
        assert!(
            res.report.reopt_count <= exec.config().max_reopts + 1,
            "{}: {} reopts",
            q.name,
            res.report.reopt_count
        );
    }
}
