//! Engine edge cases end-to-end: empty tables, zero-selectivity filters,
//! self-joins, NULL join keys, degenerate configs.

use pop::{PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{ColId, DataType, Schema, Value};

fn two_tables(n_left: usize, n_right: usize) -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "l",
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        (0..n_left)
            .map(|i| vec![Value::Int((i % 10) as i64), Value::Int(i as i64)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "r",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        (0..n_right)
            .map(|i| vec![Value::Int((i % 10) as i64), Value::Int(i as i64)])
            .collect(),
    )
    .unwrap();
    cat.create_index("r", "k", IndexKind::Hash).unwrap();
    cat.create_index("l", "k", IndexKind::Hash).unwrap();
    cat
}

fn join_query() -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    let r = b.table("r");
    b.join(l, 0, r, 0);
    b.build().unwrap()
}

#[test]
fn empty_left_table() {
    let exec = PopExecutor::new(two_tables(0, 100), PopConfig::default()).unwrap();
    let res = exec.run(&join_query(), &Params::none()).unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn empty_right_table() {
    let exec = PopExecutor::new(two_tables(100, 0), PopConfig::default()).unwrap();
    let res = exec.run(&join_query(), &Params::none()).unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn both_tables_empty() {
    let exec = PopExecutor::new(two_tables(0, 0), PopConfig::default()).unwrap();
    let res = exec.run(&join_query(), &Params::none()).unwrap();
    assert!(res.rows.is_empty());
    assert_eq!(res.report.reopt_count, 0);
}

#[test]
fn zero_selectivity_filter() {
    let exec = PopExecutor::new(two_tables(500, 500), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    let r = b.table("r");
    b.join(l, 0, r, 0);
    b.filter(l, Expr::col(l, 1).gt(Expr::lit(1_000_000i64)));
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn self_join_works() {
    let exec = PopExecutor::new(two_tables(100, 1), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let a = b.table("l");
    let c = b.table("l"); // same base table twice
    b.join(a, 1, c, 1); // v = v: each row matches itself exactly
    b.filter(a, Expr::col(a, 0).eq(Expr::lit(3i64)));
    b.project(&[(a, 1), (c, 1)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 10); // k=3 for i in {3,13,...,93}
    for row in &res.rows {
        assert_eq!(row[0], row[1]);
    }
}

#[test]
fn null_join_keys_never_match() {
    let cat = Catalog::new();
    cat.create_table(
        "a",
        Schema::from_pairs(&[("k", DataType::Int)]),
        vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Null]],
    )
    .unwrap();
    cat.create_table(
        "b",
        Schema::from_pairs(&[("k", DataType::Int)]),
        vec![vec![Value::Null], vec![Value::Int(1)]],
    )
    .unwrap();
    cat.create_index("b", "k", IndexKind::Hash).unwrap();
    let exec = PopExecutor::new(cat, PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let x = b.table("a");
    let y = b.table("b");
    b.join(x, 0, y, 0);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    // Only the 1=1 pair; NULLs never join.
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0], vec![Value::Int(1), Value::Int(1)]);
}

#[test]
fn aggregate_over_empty_join_is_scalar_row() {
    let exec = PopExecutor::new(two_tables(0, 0), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    let r = b.table("r");
    b.join(l, 0, r, 0);
    b.aggregate(
        &[],
        vec![pop::AggFunc::Count, pop::AggFunc::Sum(ColId::new(l, 1))],
    );
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn limit_zero_returns_nothing() {
    let exec = PopExecutor::new(two_tables(100, 100), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    let r = b.table("r");
    b.join(l, 0, r, 0);
    b.limit(0);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn single_table_query_without_joins() {
    let exec = PopExecutor::new(two_tables(100, 0), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    b.filter(l, Expr::col(l, 0).eq(Expr::lit(7i64)));
    b.project(&[(l, 1)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 10);
}

#[test]
fn duplicate_projection_columns_are_allowed() {
    let exec = PopExecutor::new(two_tables(10, 10), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let l = b.table("l");
    let r = b.table("r");
    b.join(l, 0, r, 0);
    b.project(&[(l, 0), (l, 0), (r, 0)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    for row in &res.rows {
        assert_eq!(row[0], row[1]);
        assert_eq!(row[0], row[2]);
    }
}

#[test]
fn unknown_table_in_query_is_an_error() {
    let exec = PopExecutor::new(two_tables(10, 10), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let x = b.table("does_not_exist");
    b.filter(x, Expr::col(x, 0).eq(Expr::lit(1i64)));
    let q = b.build().unwrap();
    assert!(exec.run(&q, &Params::none()).is_err());
}
