//! Batch-size invariance of the vectorized engine.
//!
//! Batch boundaries must carry no semantics: running any query at any
//! batch size has to produce byte-identical rows *in the same order*, the
//! same optimize–execute step sequence, the same CHECK outcomes and
//! observed cardinalities, and the same re-optimization decisions as
//! `batch_size = 1` (which reproduces the classic row-at-a-time engine).
//! Work counters are deliberately **not** compared: per-batch charging
//! groups the same f64 terms differently, so totals agree only up to
//! floating-point associativity.

use pop::{CheckFlavor, FlavorSet, ObservedCard, PopConfig, PopExecutor, RunReport};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_tpch::{all_queries, tpch_catalog};
use pop_types::{DataType, Schema, Value};

const DMV_SCALE: f64 = 0.0003;
const TPCH_SF: f64 = 0.0005;
const BATCH_SIZES: [usize; 3] = [7, 64, 1024];

/// Compare everything discrete about two run reports: step sequence, plan
/// shapes, emitted rows, MV reuse, check events and violations.
fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.steps.len(), b.steps.len(), "{what}: step count differs");
    assert_eq!(a.reopt_count, b.reopt_count, "{what}: reopt count differs");
    assert_eq!(
        a.budget_exhausted, b.budget_exhausted,
        "{what}: budget flag differs"
    );
    for (i, (sa, sb)) in a.steps.iter().zip(b.steps.iter()).enumerate() {
        assert_eq!(sa.plan, sb.plan, "{what} step {i}: plan differs");
        assert_eq!(sa.shape, sb.shape, "{what} step {i}: shape differs");
        assert_eq!(
            sa.rows_emitted, sb.rows_emitted,
            "{what} step {i}: rows_emitted differs"
        );
        assert_eq!(sa.mvs_used, sb.mvs_used, "{what} step {i}: mvs_used");
        assert_eq!(
            sa.check_events.len(),
            sb.check_events.len(),
            "{what} step {i}: event count differs"
        );
        for (ea, eb) in sa.check_events.iter().zip(sb.check_events.iter()) {
            assert_eq!(ea.check_id, eb.check_id, "{what} step {i}: check id");
            assert_eq!(ea.flavor, eb.flavor, "{what} step {i}: flavor");
            assert_eq!(
                format!("{:?}", ea.context),
                format!("{:?}", eb.context),
                "{what} step {i}: context"
            );
            assert_eq!(ea.outcome, eb.outcome, "{what} step {i}: outcome");
            assert_eq!(
                ea.observed, eb.observed,
                "{what} step {i}: observed cardinality differs at check #{}",
                ea.check_id
            );
            assert_eq!(ea.signature, eb.signature, "{what} step {i}: signature");
        }
        match (&sa.violation, &sb.violation) {
            (None, None) => {}
            (Some(va), Some(vb)) => {
                assert_eq!(va.check_id, vb.check_id, "{what} step {i}: viol check");
                assert_eq!(va.flavor, vb.flavor, "{what} step {i}: viol flavor");
                assert_eq!(va.observed, vb.observed, "{what} step {i}: viol observed");
                assert_eq!(va.forced, vb.forced, "{what} step {i}: viol forced");
                assert_eq!(
                    va.signature, vb.signature,
                    "{what} step {i}: viol signature"
                );
            }
            (x, y) => panic!("{what} step {i}: violation mismatch {x:?} vs {y:?}"),
        }
    }
}

fn config_with_batch(batch_size: usize) -> PopConfig {
    PopConfig {
        batch_size,
        ..PopConfig::default()
    }
}

/// Run a workload at the given batch size; rows are kept in emission
/// order (NOT sorted) so ordering differences fail the comparison.
fn run_workload(
    catalog: Catalog,
    queries: &[(String, pop::QuerySpec)],
    batch_size: usize,
) -> Vec<(Vec<Vec<Value>>, RunReport)> {
    let exec = PopExecutor::new(catalog, config_with_batch(batch_size)).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            let res = exec
                .run(q, &Params::none())
                .unwrap_or_else(|e| panic!("{name} @ batch {batch_size} failed: {e}"));
            (res.rows, res.report)
        })
        .collect()
}

fn assert_workload_invariant(
    make_catalog: impl Fn() -> Catalog,
    queries: &[(String, pop::QuerySpec)],
    label: &str,
) {
    let reference = run_workload(make_catalog(), queries, 1);
    for bs in BATCH_SIZES {
        let got = run_workload(make_catalog(), queries, bs);
        for (((rows_ref, rep_ref), (rows, rep)), (name, _)) in
            reference.iter().zip(got.iter()).zip(queries.iter())
        {
            let what = format!("{label}/{name} @ batch {bs}");
            assert_eq!(rows_ref, rows, "{what}: rows differ from row-at-a-time");
            assert_reports_equal(rep_ref, rep, &what);
        }
    }
}

#[test]
fn dmv_workload_is_batch_size_invariant() {
    let queries: Vec<(String, pop::QuerySpec)> = dmv_queries()
        .into_iter()
        .map(|q| (q.name.clone(), q.spec))
        .collect();
    assert_workload_invariant(|| dmv_catalog(DMV_SCALE).unwrap(), &queries, "dmv");
}

#[test]
fn tpch_suite_is_batch_size_invariant() {
    let queries: Vec<(String, pop::QuerySpec)> = all_queries()
        .into_iter()
        .map(|(name, spec)| (name.to_string(), spec))
        .collect();
    assert_workload_invariant(|| tpch_catalog(TPCH_SF).unwrap(), &queries, "tpch");
}

// ---------------------------------------------------------------------
// ECDC under batching: a check that fires mid-batch must hand the app
// exactly the rows counted before the violation, and the deferred
// compensation of the next step must neither duplicate nor drop any row.
// ---------------------------------------------------------------------

/// Correlated data that breaks the independence assumption (16x
/// underestimate on the triple-equality filter), forcing a mid-pipeline
/// ECDC violation partway through a batch.
fn correlated_db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
            ("grp_c", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

fn spj_query() -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.project(&[(c, 0), (o, 0)]);
    b.build().unwrap()
}

const EXPECTED_ROWS: usize = 12_500;

#[test]
fn ecdc_mid_batch_violation_neither_drops_nor_duplicates() {
    let mut reference: Option<(Vec<Vec<Value>>, RunReport)> = None;
    for bs in [1usize, 3, 64, 1024] {
        let mut cfg = config_with_batch(bs);
        cfg.optimizer.flavors = FlavorSet::only(CheckFlavor::Ecdc);
        let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
        let res = exec.run(&spj_query(), &Params::none()).unwrap();
        assert_eq!(
            res.rows.len(),
            EXPECTED_ROWS,
            "batch {bs}: dropped or duplicated rows"
        );
        let mut sorted = res.rows.clone();
        sorted.sort();
        let n = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "batch {bs}: duplicate rows returned");
        assert!(
            res.report.reopt_count >= 1,
            "batch {bs}: expected the ECDC check to fire"
        );
        match &reference {
            None => reference = Some((res.rows, res.report)),
            Some((rows_ref, rep_ref)) => {
                assert_eq!(rows_ref, &res.rows, "batch {bs}: rows differ");
                assert_reports_equal(rep_ref, &res.report, &format!("ecdc @ batch {bs}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Thread-count invariance of partition-parallel execution.
//
// Plans DIFFER between thread counts (a parallel plan carries GATHER /
// EXCHANGE nodes and fold-registered checks), so unlike the batch-size
// comparison above we do not compare plan strings or per-step row
// counts: a violated parallel region discards its buffered rows and
// re-emits nothing, whereas a violated serial pipeline hands back the
// rows counted before the violation (deferred compensation makes the
// final multiset identical either way). What must be invariant: the
// final row multiset, the re-optimization decisions, and every check
// event's stable fields (id, flavor, outcome, observed cardinality,
// signature).
// ---------------------------------------------------------------------

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn config_with_threads(batch_size: usize, threads: usize) -> PopConfig {
    let mut cfg = config_with_batch(batch_size);
    cfg.optimizer.threads = threads;
    // Test catalogs are tiny; drop the size gate so regions actually form.
    cfg.optimizer.min_parallel_rows = 0.0;
    cfg
}

/// The thread-count-invariant projection of a run report.
fn stable_summary(rep: &RunReport) -> Vec<(usize, String)> {
    let mut events: Vec<(usize, String)> = rep
        .steps
        .iter()
        .flat_map(|s| s.check_events.iter())
        .map(|e| {
            (
                e.check_id,
                format!(
                    "{:?}/{:?}/{:?}/{}",
                    e.flavor, e.outcome, e.observed, e.signature
                ),
            )
        })
        .collect();
    events.sort();
    events
}

fn run_workload_threads(
    catalog: Catalog,
    queries: &[(String, pop::QuerySpec)],
    batch_size: usize,
    threads: usize,
) -> Vec<(Vec<Vec<Value>>, RunReport)> {
    let exec = PopExecutor::new(catalog, config_with_threads(batch_size, threads)).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            let res = exec.run(q, &Params::none()).unwrap_or_else(|e| {
                panic!("{name} @ batch {batch_size} threads {threads} failed: {e}")
            });
            let mut rows = res.rows;
            rows.sort();
            (rows, res.report)
        })
        .collect()
}

fn assert_thread_invariant(
    make_catalog: impl Fn() -> Catalog,
    queries: &[(String, pop::QuerySpec)],
    label: &str,
) {
    for bs in [1usize, 1024] {
        let reference = run_workload_threads(make_catalog(), queries, bs, 1);
        for threads in THREAD_COUNTS {
            let got = run_workload_threads(make_catalog(), queries, bs, threads);
            for (((rows_ref, rep_ref), (rows, rep)), (name, _)) in
                reference.iter().zip(got.iter()).zip(queries.iter())
            {
                let what = format!("{label}/{name} @ batch {bs} threads {threads}");
                assert_eq!(rows_ref, rows, "{what}: row multiset differs from serial");
                assert_eq!(
                    rep_ref.reopt_count, rep.reopt_count,
                    "{what}: reopt count differs"
                );
                assert_eq!(
                    stable_summary(rep_ref),
                    stable_summary(rep),
                    "{what}: check events differ"
                );
            }
        }
    }
}

#[test]
fn dmv_workload_is_thread_count_invariant() {
    let queries: Vec<(String, pop::QuerySpec)> = dmv_queries()
        .into_iter()
        .map(|q| (q.name.clone(), q.spec))
        .collect();
    assert_thread_invariant(|| dmv_catalog(DMV_SCALE).unwrap(), &queries, "dmv");
}

#[test]
fn tpch_suite_is_thread_count_invariant() {
    let queries: Vec<(String, pop::QuerySpec)> = all_queries()
        .into_iter()
        .map(|(name, spec)| (name.to_string(), spec))
        .collect();
    assert_thread_invariant(|| tpch_catalog(TPCH_SF).unwrap(), &queries, "tpch");
}

/// Morsel boundaries, like batch boundaries, must carry no semantics:
/// any morsel size at any thread count reproduces the serial run's rows,
/// step sequence and check events exactly. `1` degenerates to one chain
/// per input row — the worst case for scheduling-order bugs.
const MORSEL_SIZES: [usize; 4] = [1, 7, 64, 1024];

fn run_workload_morsels(
    catalog: Catalog,
    queries: &[(String, pop::QuerySpec)],
    morsel_size: usize,
    threads: usize,
) -> Vec<(Vec<Vec<Value>>, RunReport)> {
    let mut cfg = config_with_threads(1024, threads);
    cfg.morsel_size = morsel_size;
    let exec = PopExecutor::new(catalog, cfg).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            let res = exec.run(q, &Params::none()).unwrap_or_else(|e| {
                panic!("{name} @ morsel {morsel_size} threads {threads} failed: {e}")
            });
            let mut rows = res.rows;
            rows.sort();
            (rows, res.report)
        })
        .collect()
}

#[test]
fn tpch_suite_is_morsel_size_invariant() {
    let queries: Vec<(String, pop::QuerySpec)> = all_queries()
        .into_iter()
        .map(|(name, spec)| (name.to_string(), spec))
        .collect();
    let reference = run_workload_morsels(tpch_catalog(TPCH_SF).unwrap(), &queries, 1024, 1);
    for ms in MORSEL_SIZES {
        for threads in [1usize, 2, 4, 8] {
            let got = run_workload_morsels(tpch_catalog(TPCH_SF).unwrap(), &queries, ms, threads);
            for (((rows_ref, rep_ref), (rows, rep)), (name, _)) in
                reference.iter().zip(got.iter()).zip(queries.iter())
            {
                let what = format!("tpch/{name} @ morsel {ms} threads {threads}");
                assert_eq!(rows_ref, rows, "{what}: row multiset differs from serial");
                assert_eq!(
                    rep_ref.steps.len(),
                    rep.steps.len(),
                    "{what}: step count differs"
                );
                assert_eq!(
                    rep_ref.reopt_count, rep.reopt_count,
                    "{what}: reopt count differs"
                );
                assert_eq!(
                    stable_summary(rep_ref),
                    stable_summary(rep),
                    "{what}: check events differ"
                );
            }
        }
    }
}

/// Parallel plans must actually form on this workload — otherwise the
/// invariance suite silently degenerates into serial-vs-serial.
#[test]
fn parallel_regions_actually_form() {
    let exec = PopExecutor::new(correlated_db(), config_with_threads(1024, 4)).unwrap();
    let plan = exec.plan(&spj_query(), &Params::none()).unwrap();
    assert!(
        plan.to_string().contains("GATHER"),
        "no parallel region in:\n{plan}"
    );
}

/// Every executed parallel region surfaces its scheduling diagnostics on
/// the step report: degree of parallelism, mode, morsel count and
/// per-worker morsel/steal/wait/compute figures. At least one TPC-H
/// region must actually run morsel-driven (many morsels, work-stealing
/// pool); regions whose CHECK needs the fixed-chain rendezvous stay
/// `Range`.
#[test]
fn parallel_regions_report_morsel_diagnostics() {
    let mut cfg = config_with_threads(1024, 4);
    cfg.morsel_size = 64; // small morsels: many per worker
    let exec = PopExecutor::new(tpch_catalog(TPCH_SF).unwrap(), cfg).unwrap();
    let mut morsel_regions = 0usize;
    let mut summary_seen = false;
    for (name, q) in all_queries() {
        let res = exec
            .run(&q, &Params::none())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        for d in res.report.steps.iter().flat_map(|s| s.parallel.iter()) {
            assert!(
                d.dop >= 2,
                "{name}: diag on a serial region: {}",
                d.summary()
            );
            assert!(!d.workers.is_empty(), "{name}: no worker diags");
            let claimed: u64 = d.workers.iter().map(|w| w.morsels).sum();
            assert!(
                claimed >= d.morsels as u64,
                "{name}: workers claimed {claimed} of {} morsels: {}",
                d.morsels,
                d.summary()
            );
            if d.mode == pop::RegionMode::Morsel && d.morsels > d.dop {
                morsel_regions += 1;
            }
        }
        summary_seen |= res.report.summary().contains("parallel: dop=");
    }
    assert!(morsel_regions > 0, "no region ran morsel-driven");
    assert!(summary_seen, "region diagnostics missing from the summary");
}

/// The ECDC mid-batch violation scenario, under a parallel region: the
/// fold-registered check trips on the *global* count, the region
/// discards its buffered rows, and deferred compensation still yields
/// exactly the serial multiset at every thread count.
#[test]
fn ecdc_violation_is_thread_count_invariant() {
    let mut reference: Option<(Vec<Vec<Value>>, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        for bs in [1usize, 1024] {
            let mut cfg = config_with_threads(bs, threads);
            cfg.optimizer.flavors = FlavorSet::only(CheckFlavor::Ecdc);
            let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
            let res = exec.run(&spj_query(), &Params::none()).unwrap();
            assert_eq!(
                res.rows.len(),
                EXPECTED_ROWS,
                "threads {threads} batch {bs}: dropped or duplicated rows"
            );
            let mut sorted = res.rows.clone();
            sorted.sort();
            let n = sorted.len();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                n,
                "threads {threads} batch {bs}: duplicate rows returned"
            );
            assert!(
                res.report.reopt_count >= 1,
                "threads {threads} batch {bs}: expected the ECDC check to fire"
            );
            match &reference {
                None => reference = Some((sorted, res.report.reopt_count)),
                Some((rows_ref, reopt_ref)) => {
                    assert_eq!(
                        rows_ref, &sorted,
                        "threads {threads} batch {bs}: rows differ"
                    );
                    assert_eq!(
                        *reopt_ref, res.report.reopt_count,
                        "threads {threads} batch {bs}: reopt count differs"
                    );
                }
            }
        }
    }
}

/// Same scenario but with hash joins forced, so the violation happens
/// under a parallel probe of a shared (controller-built) hash table.
#[test]
fn ecdc_violation_under_parallel_hash_probe() {
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for threads in [1usize, 4] {
        let mut cfg = config_with_threads(1024, threads);
        cfg.optimizer.flavors = FlavorSet::only(CheckFlavor::Ecdc);
        cfg.optimizer.joins = pop::JoinMethods {
            nljn: false,
            hsjn: true,
            mgjn: false,
        };
        let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
        let res = exec.run(&spj_query(), &Params::none()).unwrap();
        let mut sorted = res.rows;
        sorted.sort();
        assert_eq!(
            sorted.len(),
            EXPECTED_ROWS,
            "threads {threads}: wrong row count"
        );
        match &reference {
            None => reference = Some(sorted),
            Some(r) => assert_eq!(r, &sorted, "threads {threads}: rows differ"),
        }
    }
}

/// The monitor/sampling layer must be deterministic across parallelism
/// shape: the fired suboptimality signals (signature, tripped bound,
/// observation) and the sampling vet's decision are identical across
/// threads 1/2/4/8 × morsel sizes 1/1024. In-region monitors fold their
/// counts into shared cells whose trip observation is derived from the
/// bound, not from scheduling order, so the signal content cannot depend
/// on which worker happened to cross the threshold.
#[test]
fn monitor_signals_and_vet_decisions_are_parallelism_invariant() {
    let no_check_cfg = |threads: usize, morsel: usize, monitor: bool, vet: bool| {
        let mut cfg = config_with_threads(1024, threads);
        cfg.morsel_size = morsel;
        cfg.optimizer.flavors = FlavorSet::none();
        cfg.monitor = monitor;
        // The correlated filter is a 16x underestimate; the default 32x
        // drift envelope would absorb it.
        cfg.monitor_drift = 4.0;
        cfg.sample_vet = vet;
        cfg
    };
    type MonitorSummary = (usize, Vec<(String, u64, u64)>);
    let mut monitor_ref: Option<MonitorSummary> = None;
    let mut vet_ref: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        for morsel in [1usize, 1024] {
            let what = format!("threads {threads} morsel {morsel}");

            // Monitor path: flavors off, vet off — only the continuous
            // monitors stand between the misestimate and the root.
            let cfg = no_check_cfg(threads, morsel, true, false);
            let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
            let res = exec.run(&spj_query(), &Params::none()).unwrap();
            assert_eq!(res.rows.len(), EXPECTED_ROWS, "{what}: wrong rows");
            let mut signals: Vec<(String, u64, u64)> = res
                .report
                .steps
                .iter()
                .flat_map(|s| s.monitors.iter())
                .map(|m| (m.signature.clone(), m.trip, m.observed))
                .collect();
            signals.sort();
            assert!(!signals.is_empty(), "{what}: no monitor fired");
            let summary = (res.report.reopt_count, signals);
            match &monitor_ref {
                None => monitor_ref = Some(summary),
                Some(r) => assert_eq!(r, &summary, "{what}: monitor signals differ"),
            }

            // Vet path: the pre-run sampling decision must not depend on
            // the parallel shape either (the vet always runs the serial
            // skeleton).
            let cfg = no_check_cfg(threads, morsel, false, true);
            let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
            let res = exec.run(&spj_query(), &Params::none()).unwrap();
            assert_eq!(res.rows.len(), EXPECTED_ROWS, "{what}: wrong rows");
            assert!(
                res.report.sample_vet.is_some(),
                "{what}: risky no-CHECK plan was not sample-vetted"
            );
            let sv = format!("{:?}", res.report.sample_vet);
            match &vet_ref {
                None => vet_ref = Some(sv),
                Some(r) => assert_eq!(r, &sv, "{what}: sample-vet decision differs"),
            }
        }
    }
}

/// Exact observations (checks that drained their producer, including
/// CHECKs above materializations) must report the same materialized
/// count at every batch size.
#[test]
fn materialized_counts_are_batch_size_invariant() {
    let mut reference: Option<Vec<(usize, ObservedCard)>> = None;
    for bs in [1usize, 5, 1024] {
        let exec = PopExecutor::new(correlated_db(), config_with_batch(bs)).unwrap();
        let res = exec.run(&spj_query(), &Params::none()).unwrap();
        let exact: Vec<(usize, ObservedCard)> = res
            .report
            .steps
            .iter()
            .flat_map(|s| s.check_events.iter())
            .filter(|e| e.observed.is_exact())
            .map(|e| (e.check_id, e.observed))
            .collect();
        match &reference {
            None => reference = Some(exact),
            Some(r) => assert_eq!(r, &exact, "batch {bs}: exact counts differ"),
        }
    }
}
