//! Correlated EXISTS / NOT EXISTS semantics end-to-end, including the
//! real forms of TPC-H Q4 and a Q22-style anti-join query.

use pop::{PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

fn db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[("cid", DataType::Int), ("nation", DataType::Int)]),
        (0..1000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect(),
    )
    .unwrap();
    // Orders exist only for even customers; amount flags some as large.
    cat.create_table(
        "orders",
        Schema::from_pairs(&[
            ("oid", DataType::Int),
            ("cust", DataType::Int),
            ("amount", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int((i % 500) * 2), // customers 0,2,...,998
                    Value::Int(i % 100),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

#[test]
fn exists_keeps_customers_with_orders() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    b.filter(c, Expr::col(c, 1).eq(Expr::lit(4i64)));
    b.exists("orders", (c, 0), 1, None);
    b.project(&[(c, 0)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    // Nation 4: customers 4, 14, 24, ... (100 of them) — all even, so
    // all have orders.
    assert_eq!(res.rows.len(), 100);
    for row in &res.rows {
        assert_eq!(row[0].as_i64().unwrap() % 2, 0);
    }
}

#[test]
fn not_exists_keeps_customers_without_orders() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    b.not_exists("orders", (c, 0), 1, None);
    b.aggregate(&[(c, 1)], vec![pop::AggFunc::Count]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    // Customers without orders are exactly the odd cids, i.e. the five
    // odd-digit nations, 100 customers each.
    assert_eq!(res.rows.len(), 5);
    for row in &res.rows {
        assert_eq!(row[0].as_i64().unwrap() % 2, 1, "nation digit must be odd");
        assert_eq!(row[1], Value::Int(100));
    }
}

#[test]
fn exists_with_inner_predicate() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    // Customers with at least one order of amount >= 99 (1% of orders).
    b.exists(
        "orders",
        (c, 0),
        1,
        Some(Expr::col(0, 2).ge(Expr::lit(99i64))),
    );
    b.project(&[(c, 0)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    // amount = i % 100 == 99 for i in {99,199,...}: custs (99%500)*2 etc.
    let expected: std::collections::HashSet<i64> = (0..5000)
        .filter(|i| i % 100 == 99)
        .map(|i| (i % 500) * 2)
        .collect();
    assert_eq!(res.rows.len(), expected.len());
    for row in &res.rows {
        assert!(expected.contains(&row[0].as_i64().unwrap()));
    }
}

#[test]
fn exists_and_not_exists_partition_the_table() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let run = |negated: bool| {
        let mut b = QueryBuilder::new();
        let c = b.table("customer");
        if negated {
            b.not_exists("orders", (c, 0), 1, None);
        } else {
            b.exists("orders", (c, 0), 1, None);
        }
        b.project(&[(c, 0)]);
        exec.run(&b.build().unwrap(), &Params::none()).unwrap().rows
    };
    let with = run(false);
    let without = run(true);
    assert_eq!(with.len() + without.len(), 1000);
    let a: std::collections::HashSet<_> = with.into_iter().collect();
    let b: std::collections::HashSet<_> = without.into_iter().collect();
    assert!(a.is_disjoint(&b));
}

/// TPC-H Q4 in its real (EXISTS) form.
#[test]
fn q4_exists_form_matches_join_form() {
    use pop_tpch::cols::{lineitem, orders};
    let exec = PopExecutor::new(
        pop_tpch::tpch_catalog(0.0005).unwrap(),
        PopConfig::default(),
    )
    .unwrap();
    // EXISTS form: orders with a late lineitem, counted by priority.
    let mut b = QueryBuilder::new();
    let o = b.table("orders");
    b.filter(
        o,
        Expr::col(o, orders::ORDERDATE)
            .between(Expr::lit(Value::Date(800)), Expr::lit(Value::Date(890))),
    );
    b.exists(
        "lineitem",
        (o, orders::ORDERKEY),
        lineitem::ORDERKEY,
        Some(Expr::col(0, lineitem::COMMITDATE).lt(Expr::col(0, lineitem::RECEIPTDATE))),
    );
    b.aggregate(&[(o, orders::ORDERPRIORITY)], vec![pop::AggFunc::Count]);
    b.order_by(0, false);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    // The EXISTS form counts each qualifying ORDER once; the join form
    // (pop_tpch::q4) counts order×lineitem pairs, so only the grouping
    // keys must agree.
    let join_form = exec.run(&pop_tpch::q4(), &Params::none()).unwrap();
    let keys: Vec<&Value> = res.rows.iter().map(|r| &r[0]).collect();
    let join_keys: Vec<&Value> = join_form.rows.iter().map(|r| &r[0]).collect();
    assert_eq!(keys, join_keys);
    // And EXISTS counts are bounded by the join counts.
    for (e, j) in res.rows.iter().zip(join_form.rows.iter()) {
        assert!(e[1].as_i64().unwrap() <= j[1].as_i64().unwrap());
    }
}
