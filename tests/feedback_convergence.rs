//! Convergence of the fleet-wide feedback loop on the parameterized
//! TPC-H Q10 (the paper's §5.1 robustness query): with cross-query
//! learning, a repeated binding pays for its misestimate exactly once;
//! with the validity-range plan cache, a repeated binding eventually
//! skips optimization entirely, while an out-of-range binding misses
//! with a reason and re-plans.

use pop::{PopConfig, PopExecutor};
use pop_expr::Params;
use pop_tpch::{q10, tpch_catalog};
use pop_types::Value;

const SF: f64 = 0.002;

fn params(v: i64) -> Params {
    Params::new(vec![Value::Int(v)])
}

/// The Figure 11 environment: memory a fraction of the data and a highly
/// selective default for the parameter-marker predicate, so the
/// misestimate at large bindings is severe enough to re-optimize.
fn fig11_config() -> PopConfig {
    let mut cfg = PopConfig::default();
    cfg.cost_model.mem_rows = 4000.0;
    cfg.optimizer.selectivity_defaults.range = 0.015;
    cfg
}

#[test]
fn repeated_binding_reoptimizes_once_then_never_again() {
    let cfg = PopConfig {
        learn_across_queries: true,
        ..fig11_config()
    };
    let exec = PopExecutor::new(tpch_catalog(SF).unwrap(), cfg).unwrap();
    let q = q10();
    // Binding 50 selects every lineitem; the parameter-marker default
    // selectivity underestimates 3x, which triggers a re-optimization.
    let first = exec.run(&q, &params(50)).unwrap();
    assert!(
        first.report.reopt_count >= 1,
        "first run should hit the misestimate (steps: {:?})",
        first
            .report
            .steps
            .iter()
            .map(|s| &s.shape)
            .collect::<Vec<_>>()
    );
    assert!(
        !exec.learned_facts().is_empty(),
        "completed run should publish its facts"
    );

    // Same binding again: the published facts seed the estimator, so the
    // first plan is already right and no check fires.
    let second = exec.run(&q, &params(50)).unwrap();
    assert_eq!(
        second.report.reopt_count, 0,
        "learned facts should eliminate the repeat re-optimization"
    );
    assert!(
        second.report.feedback_base_hits > 0,
        "the estimator should have consulted cross-query facts"
    );
    let mut a = first.rows.clone();
    let mut b = second.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "learning must not change results");
}

#[test]
fn plan_cache_hits_in_range_and_misses_out_of_range() {
    // Correct parameterized estimates make the guards binding-sensitive:
    // the cached plan's validity ranges admit bindings near the one that
    // produced it and reject far-away ones.
    let mut cfg = PopConfig {
        plan_cache: true,
        ..PopConfig::default()
    };
    cfg.optimizer.correct_param_estimates = true;
    let exec = PopExecutor::new(tpch_catalog(SF).unwrap(), cfg).unwrap();
    let q = q10();

    // First run at a selective binding: nothing cached yet.
    let r1 = exec.run(&q, &params(3)).unwrap();
    let d1 = r1.report.plan_cache.as_deref().unwrap();
    assert!(d1.starts_with("miss"), "first run must miss: {d1}");
    assert!(!exec.plan_cache().is_empty(), "completed run should cache");

    // Same binding again: every guard admits it — no optimization at all.
    let r2 = exec.run(&q, &params(3)).unwrap();
    let d2 = r2.report.plan_cache.as_deref().unwrap();
    assert!(d2.starts_with("hit"), "repeat binding must hit: {d2}");
    assert!(
        r2.report.steps[0].memo.is_none(),
        "a plan-cache hit must not have run the optimizer"
    );
    let mut a = r1.rows.clone();
    let mut b = r2.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "cached plan must return identical rows");

    // A far-away binding (50 selects everything, ~17x the estimate at 3):
    // some validity guard must reject it, with a reason.
    let r3 = exec.run(&q, &params(50)).unwrap();
    let d3 = r3.report.plan_cache.as_deref().unwrap();
    assert!(
        d3.starts_with("miss: estimate"),
        "out-of-range binding must miss on a guard: {d3}"
    );
    assert!(
        r3.report.steps[0].memo.is_some(),
        "a miss must fall through to the optimizer"
    );
    // The miss re-planned and cached a second entry vetted for the new
    // binding's neighborhood.
    let r4 = exec.run(&q, &params(50)).unwrap();
    let d4 = r4.report.plan_cache.as_deref().unwrap();
    assert!(
        d4.starts_with("hit"),
        "re-planned binding must now hit: {d4}"
    );
    let (hits, misses) = exec.plan_cache().hit_miss();
    assert_eq!((hits, misses), (2, 2));
}

#[test]
fn learning_plus_plan_cache_converges_to_zero_overhead() {
    let cfg = PopConfig {
        learn_across_queries: true,
        plan_cache: true,
        ..fig11_config()
    };
    let exec = PopExecutor::new(tpch_catalog(SF).unwrap(), cfg).unwrap();
    let q = q10();

    // Run 1: misestimate, re-optimization, facts published. The final
    // plan reuses a temp MV, so it is (correctly) refused by the cache.
    let r1 = exec.run(&q, &params(50)).unwrap();
    assert!(r1.report.reopt_count >= 1);

    // Run 2: feedback-seeded first plan, no re-optimization; the clean
    // single-step plan is cached.
    let r2 = exec.run(&q, &params(50)).unwrap();
    assert_eq!(
        r2.report.reopt_count, 0,
        "feedback should pre-correct run 2"
    );

    // Run 3: the plan cache serves the vetted plan outright.
    let r3 = exec.run(&q, &params(50)).unwrap();
    assert_eq!(r3.report.reopt_count, 0);
    let d3 = r3.report.plan_cache.as_deref().unwrap();
    assert!(
        d3.starts_with("hit"),
        "converged workload should hit the plan cache: {d3}"
    );
    let mut a = r1.rows.clone();
    let mut c = r3.rows.clone();
    a.sort();
    c.sort();
    assert_eq!(a, c, "convergence must not change results");
}
