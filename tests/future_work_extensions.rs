//! Tests for the paper's §7 future-work directions implemented as
//! opt-in extensions: LEO-style cross-query learning and the
//! robustness-preferring optimizer mode.

use pop::{PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

fn correlated_db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[
            ("cid", DataType::Int),
            ("grp_a", DataType::Int),
            ("grp_b", DataType::Int),
            ("grp_c", DataType::Int),
        ]),
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                    Value::Int(i % 4),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..50_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat.create_index("customer", "cid", IndexKind::Hash)
        .unwrap();
    cat
}

fn correlated_query() -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.build().unwrap()
}

#[test]
fn learning_avoids_repeating_the_mistake() {
    let cfg = PopConfig {
        learn_across_queries: true,
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
    let q = correlated_query();

    let first = exec.run(&q, &Params::none()).unwrap();
    assert!(
        first.report.reopt_count >= 1,
        "first execution should hit the misestimate"
    );
    assert!(!exec.learned_facts().is_empty(), "facts should be retained");

    let second = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(
        second.report.reopt_count, 0,
        "the learned cardinalities should yield the right plan immediately"
    );
    assert!(
        second.report.total_work < first.report.total_work,
        "second run ({}) should be cheaper than the first ({})",
        second.report.total_work,
        first.report.total_work
    );
    // Results identical.
    let mut a = first.rows.clone();
    let mut b = second.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn without_learning_every_run_repeats_the_reopt() {
    let exec = PopExecutor::new(correlated_db(), PopConfig::default()).unwrap();
    let q = correlated_query();
    for _ in 0..2 {
        let res = exec.run(&q, &Params::none()).unwrap();
        assert!(res.report.reopt_count >= 1);
    }
    assert!(exec.learned_facts().is_empty());
}

#[test]
fn learning_transfers_to_overlapping_queries() {
    let cfg = PopConfig {
        learn_across_queries: true,
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(correlated_db(), cfg).unwrap();
    // Warm up with the plain SPJ query...
    exec.run(&correlated_query(), &Params::none()).unwrap();
    // ...then run an aggregate query over the same join: the filtered
    // customer subplan signature matches, so its fact transfers.
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(
        c,
        Expr::col(c, 1)
            .eq(Expr::lit(3i64))
            .and(Expr::col(c, 2).eq(Expr::lit(3i64)))
            .and(Expr::col(c, 3).eq(Expr::lit(3i64))),
    );
    b.aggregate(&[(c, 0)], vec![pop::AggFunc::Count]);
    let agg_q = b.build().unwrap();
    let res = exec.run(&agg_q, &Params::none()).unwrap();
    assert_eq!(
        res.report.reopt_count, 0,
        "the shared subplan's learned cardinality should transfer"
    );
    assert_eq!(res.rows.len(), 250);
}

#[test]
fn robustness_penalty_prefers_merge_joins() {
    // §7 "Checking Opportunities": in volatile environments the optimizer
    // can favor operators with more re-optimization opportunities.
    let q = correlated_query();

    let normal = PopExecutor::new(correlated_db(), PopConfig::default()).unwrap();
    let normal_plan = normal.explain(&q, &Params::none()).unwrap();

    let mut robust_cfg = PopConfig::default();
    robust_cfg.cost_model.robustness_penalty = 8.0;
    let robust = PopExecutor::new(correlated_db(), robust_cfg).unwrap();
    let robust_plan = robust.explain(&q, &Params::none()).unwrap();

    assert!(
        !normal_plan.contains("MGJN"),
        "baseline should not need merge join here:\n{normal_plan}"
    );
    assert!(
        robust_plan.contains("MGJN"),
        "robust mode should prefer the checkable merge join:\n{robust_plan}"
    );

    // And the robust plan still computes the right answer.
    let res = robust.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 12_500);
}

#[test]
fn runtime_never_charges_the_robustness_penalty() {
    // The penalty biases plan choice only; identical plans must measure
    // identical work regardless of the penalty setting.
    let q = correlated_query();
    let mut cfg_a = PopConfig::without_pop();
    cfg_a.optimizer.joins.nljn = false;
    cfg_a.optimizer.joins.hsjn = false; // force MGJN under both configs
    let mut cfg_b = cfg_a.clone();
    cfg_b.cost_model.robustness_penalty = 3.0;
    let a = PopExecutor::new(correlated_db(), cfg_a).unwrap();
    let b = PopExecutor::new(correlated_db(), cfg_b).unwrap();
    let ra = a.run(&q, &Params::none()).unwrap();
    let rb = b.run(&q, &Params::none()).unwrap();
    assert_eq!(ra.report.total_work, rb.report.total_work);
}

#[test]
fn learned_facts_do_not_leak_across_parameter_bindings() {
    // Regression test: a cardinality fact learned under one parameter
    // binding must not be applied under another — signatures incorporate
    // the bound values.
    let mut cfg = PopConfig {
        learn_across_queries: true,
        ..PopConfig::default()
    };
    cfg.optimizer.selectivity_defaults.range = 0.015; // NLJN under uncertainty
    let exec = PopExecutor::new(pop_tpch::tpch_catalog(0.001).unwrap(), cfg).unwrap();
    let q = pop_tpch::q10();
    use pop_types::Value;

    // Learn under a high-selectivity binding.
    let high = exec
        .run(&q, &pop_expr::Params::new(vec![Value::Int(50)]))
        .unwrap();
    assert!(high.report.reopt_count >= 1);

    // A near-zero binding must compute the correct (tiny) result even
    // though a "lineitem is huge" fact was just learned for binding 50.
    let low = exec
        .run(&q, &pop_expr::Params::new(vec![Value::Int(1)]))
        .unwrap();
    let expected = {
        let fresh = PopExecutor::new(
            pop_tpch::tpch_catalog(0.001).unwrap(),
            PopConfig::without_pop(),
        )
        .unwrap();
        fresh
            .run(
                &pop_tpch::q10_selectivity_literal(1),
                &pop_expr::Params::none(),
            )
            .unwrap()
    };
    let mut a = low.rows.clone();
    let mut b = expected.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a.len(), b.len(), "results diverged across bindings");
    // And re-running binding 50 reuses its own learned facts: no reopt.
    let again = exec
        .run(&q, &pop_expr::Params::new(vec![Value::Int(50)]))
        .unwrap();
    assert_eq!(again.report.reopt_count, 0);
}
