//! HAVING and LIMIT semantics end-to-end.

use pop::{PopConfig, PopExecutor};
use pop_expr::{CmpOp, Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{ColId, DataType, Schema, Value};

fn db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "sales",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("grp", DataType::Int),
            ("amount", DataType::Int),
        ]),
        (0..10_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 100), Value::Int(i % 10)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "groups",
        Schema::from_pairs(&[("gid", DataType::Int), ("name", DataType::Str)]),
        (0..100)
            .map(|g| vec![Value::Int(g), Value::str(format!("g{g}"))])
            .collect(),
    )
    .unwrap();
    cat.create_index("sales", "grp", IndexKind::Hash).unwrap();
    cat.create_index("groups", "gid", IndexKind::Hash).unwrap();
    cat
}

#[test]
fn having_filters_groups() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let s = b.table("sales");
    let g = b.table("groups");
    b.join(s, 1, g, 0);
    // Per group g: 100 rows with amount = g % 10 constant, so
    // count = 100 and sum(amount) = 100 * (g % 10).
    b.aggregate(
        &[(g, 0)],
        vec![pop::AggFunc::Count, pop::AggFunc::Sum(ColId::new(s, 2))],
    );
    // count > 100: no group qualifies.
    b.having(1, CmpOp::Gt, 100i64);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert!(res.rows.is_empty());

    // count = 100: all 100 groups qualify.
    let mut b = QueryBuilder::new();
    let s = b.table("sales");
    let g = b.table("groups");
    b.join(s, 1, g, 0);
    b.aggregate(
        &[(g, 0)],
        vec![pop::AggFunc::Count, pop::AggFunc::Sum(ColId::new(s, 2))],
    );
    b.having(1, CmpOp::Eq, 100i64);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 100);

    // sum > 500 <=> g % 10 >= 6: 40 groups.
    let mut b = QueryBuilder::new();
    let s = b.table("sales");
    let g = b.table("groups");
    b.join(s, 1, g, 0);
    b.aggregate(
        &[(g, 0)],
        vec![pop::AggFunc::Count, pop::AggFunc::Sum(ColId::new(s, 2))],
    );
    b.having(2, CmpOp::Gt, 500i64);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 40);
}

#[test]
fn having_without_aggregate_is_invalid() {
    let mut b = QueryBuilder::new();
    let s = b.table("sales");
    let g = b.table("groups");
    b.join(s, 1, g, 0);
    b.having(0, CmpOp::Gt, 1i64);
    assert!(b.build().is_err());
}

#[test]
fn limit_truncates_after_order_by() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let s = b.table("sales");
    let g = b.table("groups");
    b.join(s, 1, g, 0);
    b.aggregate(&[(g, 0)], vec![pop::AggFunc::Sum(ColId::new(s, 0))]);
    b.order_by(1, true);
    b.limit(7);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 7);
    // Descending by the sum.
    for w in res.rows.windows(2) {
        assert!(w[0][1] >= w[1][1]);
    }
}

#[test]
fn limit_on_pipelined_query_saves_work() {
    let cat = db();
    let exec = PopExecutor::new(cat, PopConfig::without_pop()).unwrap();
    let make = |limit: Option<usize>| {
        let mut b = QueryBuilder::new();
        let s = b.table("sales");
        let g = b.table("groups");
        b.join(s, 1, g, 0);
        b.filter(s, Expr::col(s, 2).ge(Expr::lit(0i64)));
        b.project(&[(s, 0), (g, 1)]);
        if let Some(n) = limit {
            b.limit(n);
        }
        b.build().unwrap()
    };
    let full = exec.run(&make(None), &Params::none()).unwrap();
    let limited = exec.run(&make(Some(10)), &Params::none()).unwrap();
    assert_eq!(limited.rows.len(), 10);
    assert_eq!(full.rows.len(), 10_000);
    assert!(
        limited.report.total_work < full.report.total_work,
        "limit should stop the pipeline early: {} vs {}",
        limited.report.total_work,
        full.report.total_work
    );
}

#[test]
fn q18_having_limit_shape() {
    let exec = PopExecutor::new(
        pop_tpch::tpch_catalog(0.0005).unwrap(),
        PopConfig::default(),
    )
    .unwrap();
    let res = exec.run(&pop_tpch::q18(), &Params::none()).unwrap();
    assert!(res.rows.len() <= 100, "LIMIT 100 violated");
    for row in &res.rows {
        let qty = row[2].as_f64().unwrap();
        assert!(qty > 120.0, "HAVING violated: {qty}");
    }
}
