//! Index range scans as an access path: correctness, plan choice, and
//! interesting-order interaction with merge joins.

use pop::{PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

fn db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "events",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("day", DataType::Date),
            ("kind", DataType::Int),
        ]),
        (0..20_000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Date((i % 1000) as i32),
                    Value::Int(i % 7),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "kinds",
        Schema::from_pairs(&[("kind", DataType::Int), ("label", DataType::Str)]),
        (0..7)
            .map(|k| vec![Value::Int(k), Value::str(format!("k{k}"))])
            .collect(),
    )
    .unwrap();
    cat.create_index("events", "day", IndexKind::Sorted)
        .unwrap();
    cat.create_index("events", "id", IndexKind::Hash).unwrap();
    cat.create_index("kinds", "kind", IndexKind::Hash).unwrap();
    cat
}

fn range_query(lo: i32, hi: i32) -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let e = b.table("events");
    let k = b.table("kinds");
    b.join(e, 2, k, 0);
    b.filter(
        e,
        Expr::col(e, 1).between(Expr::lit(Value::Date(lo)), Expr::lit(Value::Date(hi))),
    );
    b.project(&[(e, 0), (k, 1)]);
    b.build().unwrap()
}

#[test]
fn selective_range_uses_index_scan() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    // 3/1000 of the table: far below the random-vs-sequential breakeven.
    let plan = exec.explain(&range_query(10, 12), &Params::none()).unwrap();
    assert!(
        plan.contains("IXSCAN"),
        "expected an index range scan:\n{plan}"
    );
}

#[test]
fn wide_range_prefers_sequential_scan() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    // 90% of the table: sequential scan must win.
    let plan = exec.explain(&range_query(0, 899), &Params::none()).unwrap();
    assert!(
        !plan.contains("IXSCAN"),
        "wide range should not use the index:\n{plan}"
    );
}

#[test]
fn index_scan_and_table_scan_agree() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let mut no_index_cfg = PopConfig::default();
    // Force the sequential path by making random fetches prohibitive.
    no_index_cfg.cost_model.index_fetch_row = 1e9;
    let seq_exec = PopExecutor::new(db(), no_index_cfg).unwrap();
    for (lo, hi) in [(10, 12), (0, 0), (995, 1005), (500, 600)] {
        let q = range_query(lo, hi);
        let mut a = exec.run(&q, &Params::none()).unwrap().rows;
        let mut b = seq_exec.run(&q, &Params::none()).unwrap().rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "range [{lo},{hi}] diverged");
    }
}

#[test]
fn index_scan_output_is_sorted_by_indexed_column() {
    // The optimizer should know the range scan's order; verify the rows
    // really arrive sorted by `day` when we project it.
    let cat = db();
    let exec = PopExecutor::new(cat, PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let e = b.table("events");
    let k = b.table("kinds");
    b.join(e, 2, k, 0);
    b.filter(
        e,
        Expr::col(e, 1).between(Expr::lit(Value::Date(100)), Expr::lit(Value::Date(104))),
    );
    b.project(&[(e, 1), (e, 0)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 100); // 5 days x 20 events each
    for row in &res.rows {
        let d = row[0].as_f64().unwrap();
        assert!((100.0..=104.0).contains(&d));
    }
}

#[test]
fn strict_bounds_are_rechecked_by_residual() {
    // `day < 5` uses hi=5 as an inclusive superset bound; the residual
    // must exclude day == 5.
    let cat = db();
    let exec = PopExecutor::new(cat, PopConfig::default()).unwrap();
    let mut b = QueryBuilder::new();
    let e = b.table("events");
    let k = b.table("kinds");
    b.join(e, 2, k, 0);
    b.filter(e, Expr::col(e, 1).lt(Expr::lit(Value::Date(5))));
    b.project(&[(e, 1)]);
    let q = b.build().unwrap();
    let res = exec.run(&q, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 100); // days 0..=4, 20 each
    assert!(res.rows.iter().all(|r| r[0].as_f64().unwrap() < 5.0));
}
