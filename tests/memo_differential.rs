//! Property-based differential test of the incremental memo: for random
//! join specs and random injected cardinality-fact sequences, optimizing
//! through the persistent [`pop_optimizer::Memo`] must produce exactly
//! the plan a from-scratch optimization produces after every injection —
//! same cost (bit-identical), same rendered plan, same robustness-
//! certificate skeleton hash.

use pop::{certify, LintContext, PopConfig};
use pop_expr::Expr;
use pop_optimizer::{
    optimize, optimize_with_memo, CardFact, FeedbackCache, Memo, OptimizerContext,
};
use pop_plan::{subplan_signature, QueryBuilder, QuerySpec, TableSet};
use pop_stats::StatsRegistry;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};
use proptest::prelude::*;

/// Four chain-joinable tables of different sizes, so join-order choices
/// are real and feedback can flip them.
fn catalog() -> Catalog {
    let cat = Catalog::new();
    for (i, rows) in [200usize, 1000, 60, 1500].iter().enumerate() {
        cat.create_table(
            format!("t{i}"),
            Schema::from_pairs(&[
                ("pk", DataType::Int),
                ("key", DataType::Int),
                ("attr", DataType::Int),
            ]),
            (0..*rows)
                .map(|r| {
                    vec![
                        Value::Int(r as i64),
                        Value::Int((r % 50) as i64),
                        Value::Int((r % 20) as i64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        cat.create_index(&format!("t{i}"), "key", IndexKind::Hash)
            .unwrap();
    }
    cat
}

fn build_spec(n: usize, filters: &[(usize, i64)]) -> QuerySpec {
    let mut b = QueryBuilder::new();
    let ids: Vec<usize> = (0..n).map(|i| b.table(format!("t{i}"))).collect();
    for w in 1..n {
        b.join(ids[w - 1], 1, ids[w], 1);
    }
    for (t, lit) in filters {
        if *t < n {
            b.filter(ids[*t], Expr::col(ids[*t], 2).le(Expr::lit(*lit)));
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_memo_matches_scratch_under_random_feedback(
        n in 2usize..5,
        filters in prop::collection::vec((0usize..4, -2i64..25), 0..3),
        facts in prop::collection::vec((1u64..64, any::<bool>(), 1u64..200_000), 0..6),
    ) {
        let cat = catalog();
        let stats = StatsRegistry::new();
        stats.analyze_all(&cat).unwrap();
        let spec = build_spec(n, &filters);
        let opt_cfg = pop_optimizer::OptimizerConfig::default();
        let cost = PopConfig::default().cost_model;
        let feedback = FeedbackCache::new();
        let octx = OptimizerContext::new(&cat, &stats, &opt_cfg, &cost, None, &feedback);
        let lctx = LintContext::full(&cat, &spec);
        let mut memo = Memo::new();

        // Step 0 (no facts), then one step after every injected fact: the
        // memo's answer must be indistinguishable from scratch each time.
        let full_mask = (1u64 << n) - 1;
        let mut injected = 0usize;
        for step in 0..=facts.len() {
            let scratch = optimize(&spec, &octx).unwrap();
            let (inc, stats_rep) = optimize_with_memo(&spec, &octx, &mut memo).unwrap();
            prop_assert_eq!(
                scratch.props().cost.to_bits(),
                inc.props().cost.to_bits(),
                "step {}: cost diverged (scratch {} vs memo {})",
                step, scratch.props().cost, inc.props().cost
            );
            prop_assert_eq!(
                scratch.to_string(), inc.to_string(),
                "step {}: rendered plan diverged", step
            );
            prop_assert_eq!(
                certify(&scratch, &lctx).plan_hash,
                certify(&inc, &lctx).plan_hash,
                "step {}: certificate skeleton hash diverged", step
            );
            prop_assert_eq!(stats_rep.rebuilt, step == 0, "step {}: unexpected rebuild", step);

            if let Some((raw_mask, exact, val)) = facts.get(step) {
                let mask = (raw_mask % full_mask) + 1; // any non-empty subset
                let set = TableSet::from_iter((0..n).filter(|t| mask & (1 << t) != 0));
                let fact = if *exact {
                    CardFact::Exact(*val as f64)
                } else {
                    CardFact::AtLeast(*val as f64)
                };
                feedback.record(subplan_signature(&spec, set), fact);
                injected += 1;
            }
        }
        prop_assert_eq!(injected, facts.len());
    }
}
