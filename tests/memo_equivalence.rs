//! Differential equivalence of the incremental memo across the full
//! TPC-H and DMV suites: every optimization step runs with `verify_memo`,
//! which re-optimizes from scratch and fails the query on any divergence
//! (cost bits or rendered plan) from the memo's incremental answer.

use pop::{PopConfig, PopExecutor};
use pop_expr::Params;

const TPCH_SF: f64 = 0.0005;
const DMV_SCALE: f64 = 0.0003;

fn verifying_config() -> PopConfig {
    let cfg = PopConfig::default();
    assert!(
        cfg.incremental_memo,
        "incremental memo should be the default"
    );
    PopConfig {
        verify_memo: true,
        ..cfg
    }
}

#[test]
fn tpch_suite_incremental_matches_scratch() {
    let exec =
        PopExecutor::new(pop_tpch::tpch_catalog(TPCH_SF).unwrap(), verifying_config()).unwrap();
    let mut reused_total = 0usize;
    for (name, q) in pop_tpch::extended_queries() {
        let res = exec
            .run(&q, &Params::none())
            .unwrap_or_else(|e| panic!("{name}: memo/scratch verification failed: {e}"));
        for (i, s) in res.report.steps.iter().enumerate() {
            let m = s
                .memo
                .unwrap_or_else(|| panic!("{name} step {i}: no memo stats"));
            assert!(m.groups_total > 0, "{name} step {i}: empty memo");
            // The first step of a new query rebuilds; re-optimization
            // steps of the *same* query must not (only feedback facts and
            // temp MVs changed, both handled by dirty propagation).
            if i == 0 {
                assert!(m.rebuilt, "{name}: first step should rebuild");
            } else {
                assert!(
                    !m.rebuilt,
                    "{name} step {i}: re-optimization forced a full rebuild"
                );
                reused_total += m.groups_reused;
            }
        }
    }
    assert!(
        reused_total > 0,
        "no memo group was ever reused across a re-optimization"
    );
}

#[test]
fn dmv_suite_incremental_matches_scratch() {
    let exec =
        PopExecutor::new(pop_dmv::dmv_catalog(DMV_SCALE).unwrap(), verifying_config()).unwrap();
    let mut ran = 0usize;
    for q in pop_dmv::dmv_queries() {
        let res = exec
            .run(&q.spec, &Params::none())
            .unwrap_or_else(|e| panic!("{}: memo/scratch verification failed: {e}", q.name));
        for (i, s) in res.report.steps.iter().enumerate() {
            assert!(
                s.memo.is_some(),
                "{} step {i}: no memo stats on a planned step",
                q.name
            );
        }
        ran += 1;
    }
    assert_eq!(ran, 39);
}

#[test]
fn memo_results_match_plain_optimizer_results() {
    // Same workload twice — memo on vs. memo off — must return identical
    // rows and identical per-step plan shapes.
    let memo_on = PopExecutor::new(
        pop_tpch::tpch_catalog(TPCH_SF).unwrap(),
        PopConfig::default(),
    )
    .unwrap();
    let memo_off = PopExecutor::new(
        pop_tpch::tpch_catalog(TPCH_SF).unwrap(),
        PopConfig {
            incremental_memo: false,
            ..PopConfig::default()
        },
    )
    .unwrap();
    for (name, q) in pop_tpch::all_queries() {
        let a = memo_on.run(&q, &Params::none()).unwrap();
        let b = memo_off.run(&q, &Params::none()).unwrap();
        let mut ra = a.rows.clone();
        let mut rb = b.rows.clone();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "{name}: rows differ between memo on/off");
        let sa: Vec<&String> = a.report.steps.iter().map(|s| &s.shape).collect();
        let sb: Vec<&String> = b.report.steps.iter().map(|s| &s.shape).collect();
        assert_eq!(sa, sb, "{name}: plan shapes differ between memo on/off");
        assert!(
            b.report.steps.iter().all(|s| s.memo.is_none()),
            "{name}: memo stats reported although the memo was disabled"
        );
    }
}
