//! Acceptance scenario for the continuous suboptimality monitors and the
//! sampling pre-validation of risky plans.
//!
//! A DMV-style predicate over four perfectly correlated columns is
//! misestimated by **six orders of magnitude** (est `100 000 / 100⁴ =
//! 0.001`, actual ≈ 1000), and the checkpoint flavors are disabled so
//! there is **no CHECK between the bad edge and the root** — the planned
//! safety net of the paper is absent by construction. The misestimate
//! must still be caught:
//!
//! * by the **sampling pre-validation**, whose scaled-trip monitors fire
//!   a few rows into the sample and re-optimize before the full run, or
//! * by a **continuous suboptimality monitor** during the full run,
//!   escalated exactly like a CHECK violation.
//!
//! The final test pins the counterfactual: with `POP_MONITOR=off` and
//! `POP_SAMPLE_VET=off` (here via the config fields, to avoid env races)
//! the lie sails through undetected — every protective assertion of the
//! other tests fails in that configuration.

use pop::{FlavorSet, PopConfig, PopExecutor};
use pop_expr::{Expr, Params};
use pop_plan::{QueryBuilder, QuerySpec};
use pop_storage::Catalog;
use pop_types::{DataType, Schema, Value};

const VEHICLES: i64 = 100_000;
const OWNERS: i64 = 500;

/// splitmix64 finalizer: decorrelates row position from column value, so
/// the deterministic stride sample sees an unbiased slice of every group
/// (a group laid out periodically could alias with the sampling stride).
fn mix(i: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shared group of one vehicle: make, model, trim and body are all
/// this one value — perfect correlation, 100 distinct values per column.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn group(i: i64) -> i64 {
    (mix(i as u64) % 100) as i64
}

fn dmv_style_db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "vehicles",
        Schema::from_pairs(&[
            ("vid", DataType::Int),
            ("make", DataType::Int),
            ("model", DataType::Int),
            ("trim_level", DataType::Int),
            ("body", DataType::Int),
            ("owner", DataType::Int),
        ]),
        (0..VEHICLES)
            .map(|i| {
                let g = group(i);
                vec![
                    Value::Int(i),
                    Value::Int(g),
                    Value::Int(g),
                    Value::Int(g),
                    Value::Int(g),
                    Value::Int(i % OWNERS),
                ]
            })
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "owners",
        Schema::from_pairs(&[("oid", DataType::Int), ("region", DataType::Int)]),
        (0..OWNERS)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect(),
    )
    .unwrap();
    cat
}

/// Every vehicle matches exactly one owner, so the join returns exactly
/// the vehicles of group 7.
fn expected_rows() -> usize {
    (0..VEHICLES).filter(|&i| group(i) == 7).count()
}

/// `vehicles ⋈ owners` with the four-way correlated predicate: the
/// independence assumption estimates `100 000 × (1/100)⁴ = 0.001` rows
/// where reality delivers about a thousand.
fn correlated_query() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let v = b.table("vehicles");
    let o = b.table("owners");
    b.join(v, 5, o, 0);
    b.filter(
        v,
        Expr::col(v, 1)
            .eq(Expr::lit(7i64))
            .and(Expr::col(v, 2).eq(Expr::lit(7i64)))
            .and(Expr::col(v, 3).eq(Expr::lit(7i64)))
            .and(Expr::col(v, 4).eq(Expr::lit(7i64))),
    );
    b.build().unwrap()
}

/// POP enabled but with every checkpoint flavor off: no CHECK is placed
/// anywhere in the plan, so only monitors and the sampling vet stand
/// between the misestimate and the root.
fn no_check_config(monitor: bool, sample_vet: bool) -> PopConfig {
    let mut c = PopConfig::default();
    c.optimizer.flavors = FlavorSet::none();
    c.monitor = monitor;
    c.sample_vet = sample_vet;
    c
}

fn run(monitor: bool, sample_vet: bool) -> pop::QueryResult {
    let exec = PopExecutor::new(dmv_style_db(), no_check_config(monitor, sample_vet)).unwrap();
    let res = exec.run(&correlated_query(), &Params::none()).unwrap();
    assert_eq!(res.rows.len(), expected_rows(), "wrong answer");
    res
}

#[test]
fn sampling_vet_catches_the_misestimate_before_the_full_run() {
    let res = run(false, true);
    let sv = res
        .report
        .sample_vet
        .as_ref()
        .expect("risky no-CHECK plan must be sample-vetted");
    assert_eq!(sv.table, "vehicles");
    assert!(sv.scale >= 2, "sample must be a strict subset: {sv:?}");
    assert!(
        sv.replanned,
        "six-orders misestimate must fail the vet: {sv:?}"
    );
    assert!(
        sv.observations.iter().any(|(_, _, outside)| *outside),
        "no out-of-range observation recorded: {sv:?}"
    );
    // The vet replan happens *before* the full run: it consumes no
    // re-optimization budget and leaves a single executed step.
    assert_eq!(res.report.reopt_count, 0, "{:#?}", res.report.steps);
    assert_eq!(res.report.steps.len(), 1);
}

#[test]
fn monitor_catches_the_misestimate_during_the_full_run() {
    let res = run(true, false);
    assert!(res.report.sample_vet.is_none());
    assert!(
        res.report.steps[0].monitors_installed > 0,
        "no monitors installed on a no-CHECK plan"
    );
    assert!(
        res.report.reopt_count >= 1,
        "monitor must escalate like a CHECK violation: {:#?}",
        res.report.steps
    );
    let first = &res.report.steps[0];
    assert!(
        !first.monitors.is_empty(),
        "no suboptimality signal recorded"
    );
    let v = first.violation.as_ref().expect("step must suspend");
    assert!(v.monitor, "violation must be monitor-flagged: {v:?}");
    // Monitors may fire step by step as the misestimate is discovered
    // edge by edge (the join's estimate is derived independently of the
    // corrected scan), but never twice on the same subplan — the fed-back
    // fact and the fired-signature disarm both forbid it.
    let mut fired: Vec<&str> = Vec::new();
    for s in &res.report.steps {
        for m in &s.monitors {
            assert!(
                !fired.contains(&m.signature.as_str()),
                "monitor re-tripped on {}: {:#?}",
                m.signature,
                res.report.steps
            );
            fired.push(&m.signature);
        }
    }
    // And the loop converges: the last step runs to completion.
    assert!(res.report.steps.last().unwrap().violation.is_none());
}

#[test]
fn defaults_catch_it_one_way_or_the_other() {
    let res = run(true, true);
    let vetted = res
        .report
        .sample_vet
        .as_ref()
        .is_some_and(|sv| sv.replanned);
    let monitored = res.report.steps.iter().any(|s| !s.monitors.is_empty());
    assert!(
        vetted || monitored,
        "six-orders misestimate escaped both nets: {:#?}",
        res.report.summary()
    );
}

#[test]
fn with_both_nets_off_the_lie_sails_through() {
    // The counterfactual the other tests protect against: this is what
    // `POP_MONITOR=off POP_SAMPLE_VET=off` degrades to — no vet, no
    // signal, no re-optimization, the bad plan runs to the bitter end.
    let res = run(false, false);
    assert!(res.report.sample_vet.is_none());
    assert_eq!(res.report.reopt_count, 0);
    assert_eq!(res.report.steps.len(), 1);
    assert!(res.report.steps[0].monitors.is_empty());
    assert_eq!(res.report.steps[0].monitors_installed, 0);
}
