//! Regression guards for the paper-shape claims recorded in
//! EXPERIMENTS.md. These run the real experiment harness at experiment
//! scale, so they are slower than unit tests; run with
//!
//! ```text
//! cargo test --release --test paper_shapes -- --ignored
//! ```

use pop_bench::experiments::{fig11, fig13, fig15, validity};

#[test]
#[ignore = "experiment-scale; run with --release -- --ignored"]
fn fig11_shape_holds() {
    let r = fig11::run().unwrap();
    // POP stays within a small constant of the correct-estimate optimum
    // (paper: <= ~2x).
    assert!(
        r.max_pop_vs_oracle <= 2.0,
        "POP/optimal = {:.2}",
        r.max_pop_vs_oracle
    );
    // The static misestimated plan degrades by a large factor (paper:
    // almost an order of magnitude).
    assert!(
        r.max_static_vs_pop >= 4.0,
        "static/POP = {:.2}",
        r.max_static_vs_pop
    );
    // The optimal plan changes across the sweep (paper: 5 plans).
    assert!(r.oracle_plan_count >= 2, "{} plans", r.oracle_plan_count);
    // Static work grows monotonically-ish with selectivity; POP flattens.
    let first = &r.points[1];
    let last = r.points.last().unwrap();
    assert!(last.static_work > 4.0 * first.static_work);
    assert!(last.pop_work < 4.0 * first.pop_work);
}

#[test]
#[ignore = "experiment-scale; run with --release -- --ignored"]
fn fig13_lcem_overhead_is_small() {
    let r = fig13::run().unwrap();
    assert!(
        r.max_normalized <= 1.05,
        "LCEM overhead too high: {:.4}",
        r.max_normalized
    );
}

#[test]
#[ignore = "experiment-scale; run with --release -- --ignored"]
fn fig15_dmv_asymmetry_holds() {
    let r = fig15::run().unwrap();
    // A healthy share of queries improves...
    assert!(r.improved >= 8, "only {} improved", r.improved);
    // ...the best win clearly beats the worst regression...
    assert!(
        r.max_speedup > 1.5 && r.max_speedup > 3.0 * (r.max_regression - 1.0) + 1.0,
        "speedup {:.2} vs regression {:.2}",
        r.max_speedup,
        r.max_regression
    );
    // ...and regressions stay mild.
    assert!(
        r.max_regression <= 1.5,
        "regression too large: {:.2}",
        r.max_regression
    );
    // Whole-workload win.
    let total_pop: f64 = r.points.iter().map(|p| p.pop_work).sum();
    let total_static: f64 = r.points.iter().map(|p| p.static_work).sum();
    assert!(total_pop < total_static);
}

#[test]
#[ignore = "experiment-scale; run with --release -- --ignored"]
fn validity_ranges_show_the_paper_asymmetry() {
    let r = validity::run().unwrap();
    // Most checkpoints get finite upper bounds...
    assert!(r.bounded_fraction > 0.4, "{}", r.bounded_fraction);
    // ...and slack varies over orders of magnitude: tiny edges tolerate
    // huge errors, big edges near plan changes do not.
    let slacks: Vec<f64> = r.ranges.iter().filter_map(|g| g.upper_slack).collect();
    let min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
    let max = slacks.iter().copied().fold(0.0, f64::max);
    assert!(
        max / min > 20.0,
        "slack spread too small: {min:.2}..{max:.2}"
    );
}
