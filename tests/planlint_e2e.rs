//! End-to-end: the driver's static plan verification (`pop-planlint`)
//! gates the optimizer -> executor boundary. A Deny-severity finding
//! rejects the plan before a single row is read; `LintMode` controls
//! whether findings reject, warn, or are skipped.

use pop::{LintMode, PopConfig, PopExecutor, ValidityRange};
use pop_expr::{Expr, Params};
use pop_plan::{PhysNode, QueryBuilder, QuerySpec};
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, PopError, Schema, Value};

fn db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[("cid", DataType::Int), ("grp", DataType::Int)]),
        (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..5000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
            .collect(),
    )
    .unwrap();
    cat.create_index("orders", "cust", IndexKind::Hash).unwrap();
    cat
}

fn query() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(c, Expr::col(c, 1).eq(Expr::lit(3i64)));
    b.build().unwrap()
}

/// A structurally broken plan: the root's validity range is inverted
/// (lo > hi, `PL101`). The corruption is invisible to the executor —
/// edge ranges on plan props are optimizer metadata — so any difference
/// in behaviour below comes from the verification gate alone.
fn corrupted_plan(exec: &PopExecutor, q: &QuerySpec) -> PhysNode {
    let mut plan = exec.plan(q, &Params::none()).unwrap();
    plan.props_mut().edge_ranges = vec![ValidityRange::new(5.0, 1.0)];
    plan
}

#[test]
fn enforce_rejects_malformed_plan_before_execution() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let q = query();
    let plan = corrupted_plan(&exec, &q);
    let err = exec.execute_plan(&q, &plan, &Params::none()).unwrap_err();
    match err {
        PopError::InvalidPlan(msg) => assert!(msg.contains("PL101"), "{msg}"),
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
}

#[test]
fn lint_off_executes_the_same_plan() {
    let config = PopConfig {
        lint: LintMode::Off,
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(db(), config).unwrap();
    let q = query();
    let plan = corrupted_plan(&exec, &q);
    let res = exec.execute_plan(&q, &plan, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 500); // 50 matching customers x 10 orders
    assert!(res.report.steps[0].lint_warnings.is_empty());
}

#[test]
fn warn_mode_reports_but_executes() {
    let config = PopConfig {
        lint: LintMode::Warn,
        ..PopConfig::default()
    };
    let exec = PopExecutor::new(db(), config).unwrap();
    let q = query();
    let plan = corrupted_plan(&exec, &q);
    let res = exec.execute_plan(&q, &plan, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 500);
    let warnings = &res.report.steps[0].lint_warnings;
    assert!(warnings.iter().any(|w| w.contains("PL101")), "{warnings:?}");
}

#[test]
fn valid_plan_passes_the_gate() {
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let q = query();
    let plan = exec.plan(&q, &Params::none()).unwrap();
    let res = exec.execute_plan(&q, &plan, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 500);
    assert!(res.report.steps[0].lint_warnings.is_empty());
}

#[test]
fn full_pop_run_is_lint_clean_under_enforce() {
    // The normal POP loop (default config enforces) completes: every
    // plan the optimizer produces passes its own verification.
    let exec = PopExecutor::new(db(), PopConfig::default()).unwrap();
    let res = exec.run(&query(), &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 500);
    for s in &res.report.steps {
        assert!(s.lint_warnings.is_empty(), "{:?}", s.lint_warnings);
    }
}
