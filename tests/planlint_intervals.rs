//! The planlint interval analyses, end to end:
//!
//! * cross-validation — the abstract interpreter's cardinality intervals
//!   must contain the optimizer's own estimate at every node of every
//!   DMV and TPC-H scenario plan (the two views are computed from the
//!   same statistics, so an estimate outside the provable interval means
//!   one of them is wrong);
//! * the `LintMode` matrix for the interval diagnostics (`PL411`
//!   coverage holes, `PL412` dead checks, `PL413` vacuous checks) —
//!   Off stays silent, Warn/Enforce report, and none of them block
//!   execution (the interval analyses are Warn severity by design);
//! * robustness-certificate snapshots — the certificate attached to each
//!   execution step is pinned and must be invariant across thread
//!   counts and morsel sizes.

use pop::{plan_intervals, LintContext, LintMode, PopConfig, PopExecutor};
use pop_dmv::{dmv_catalog, dmv_queries};
use pop_expr::{Expr, Params};
use pop_plan::{CheckContext, CheckSpec, PhysNode, QueryBuilder, QuerySpec, ValidityRange};
use pop_storage::Catalog;
use pop_tpch::{q10, tpch_catalog};
use pop_types::{DataType, Schema, Value};

// ---------------------------------------------------------------------
// Cross-validation: intervals vs. optimizer estimates
// ---------------------------------------------------------------------

/// Absolute + relative slack: the interpreter and the estimator round
/// differently (`f64` products in different orders), so exact-boundary
/// estimates may sit epsilon outside the interval.
fn inside_with_slack(est: f64, lo: f64, hi: f64) -> bool {
    let eps = 1e-6 + est.abs() * 1e-9;
    est >= lo - eps && est <= hi + eps
}

fn cross_validate(label: &str, catalog: Catalog, queries: &[(String, QuerySpec)]) {
    let exec = PopExecutor::new(catalog, PopConfig::default()).unwrap();
    for (name, spec) in queries {
        let plan = exec.plan(spec, &Params::none()).unwrap();
        let ctx = LintContext::full(exec.catalog(), spec).with_stats(exec.stats());
        let nodes = plan_intervals(&plan, &ctx);
        assert!(!nodes.is_empty(), "{label}/{name}: empty interval table");
        for (path, est, interval) in nodes {
            assert!(
                inside_with_slack(est, interval.lo, interval.hi),
                "{label}/{name}: estimate {est} at {path} escapes the provable \
                 interval {interval}"
            );
        }
    }
}

#[test]
fn intervals_contain_optimizer_estimates_on_dmv() {
    let queries: Vec<(String, QuerySpec)> = dmv_queries()
        .into_iter()
        .map(|q| (q.name, q.spec))
        .collect();
    cross_validate("dmv", dmv_catalog(0.0003).unwrap(), &queries);
}

#[test]
fn intervals_contain_optimizer_estimates_on_tpch() {
    let queries: Vec<(String, QuerySpec)> = pop_tpch::all_queries()
        .into_iter()
        .map(|(n, spec)| (n.to_string(), spec))
        .collect();
    cross_validate("tpch", tpch_catalog(0.005).unwrap(), &queries);
}

// ---------------------------------------------------------------------
// LintMode matrix for the PL41x diagnostics
// ---------------------------------------------------------------------

fn matrix_db() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "customer",
        Schema::from_pairs(&[("cid", DataType::Int), ("grp", DataType::Int)]),
        (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "orders",
        Schema::from_pairs(&[("oid", DataType::Int), ("cust", DataType::Int)]),
        (0..5000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
            .collect(),
    )
    .unwrap();
    cat
}

/// Join + group-by: the optimizer materializes through the aggregate's
/// hash table, so LC places both a build-side check and an agg-input
/// check — the fixtures below mutate or strip those.
fn matrix_query() -> QuerySpec {
    let mut b = QueryBuilder::new();
    let c = b.table("customer");
    let o = b.table("orders");
    b.join(c, 0, o, 1);
    b.filter(c, Expr::col(c, 1).eq(Expr::lit(3i64)));
    b.aggregate(&[(c, 1)], vec![pop::AggFunc::Count]);
    b.build().unwrap()
}

fn matrix_config(mode: LintMode) -> PopConfig {
    let mut config = PopConfig {
        lint: mode,
        // Checks only count here: the fixtures rewrite trigger ranges
        // into deliberately absurd ones, and a runtime trip would tangle
        // the matrix with re-optimization behaviour.
        observe_only: true,
        ..PopConfig::default()
    };
    config.cost_model.mem_rows = 400.0;
    config
}

fn for_each_check_spec(node: &mut PhysNode, f: &mut impl FnMut(&mut CheckSpec)) {
    if let PhysNode::Check { spec, .. } | PhysNode::BufCheck { spec, .. } = node {
        f(spec);
    }
    for child in node.children_mut() {
        for_each_check_spec(child, f);
    }
}

/// Drop every agg-input LC check, leaving the rest of the safety net in
/// place, and record a bounded validity range on the aggregate's input
/// edge (edge ranges are optimizer metadata on plan props, like the
/// corruption in `planlint_e2e`): the edge into the aggregate becomes an
/// uncovered risky edge — exactly the coverage gap `PL411` proves.
fn open_agg_coverage_hole(node: &mut PhysNode) {
    loop {
        let inner = match node {
            PhysNode::Check { input, spec, .. } if spec.context == CheckContext::AggBuild => {
                Some((**input).clone())
            }
            _ => None,
        };
        match inner {
            Some(i) => *node = i,
            None => break,
        }
    }
    if matches!(node, PhysNode::HashAgg { .. }) {
        node.props_mut().edge_ranges = vec![ValidityRange::new(76.0, 5530.0)];
    }
    for child in node.children_mut() {
        open_agg_coverage_hole(child);
    }
}

/// Run one mutated plan under one lint mode; return the step-0 warnings.
fn lint_warnings_for(mode: LintMode, mutate: impl Fn(&mut PhysNode)) -> Vec<String> {
    let exec = PopExecutor::new(matrix_db(), matrix_config(mode)).unwrap();
    let q = matrix_query();
    let mut plan = exec.plan(&q, &Params::none()).unwrap();
    assert!(
        !plan.checks().is_empty(),
        "fixture plan lost its checkpoints; the matrix needs them"
    );
    mutate(&mut plan);
    let res = exec.execute_plan(&q, &plan, &Params::none()).unwrap();
    assert_eq!(res.rows.len(), 1, "one group survives the filter");
    let step = &res.report.steps[0];
    match mode {
        LintMode::Off => assert!(step.certificate.is_none(), "Off must not certify"),
        _ => assert!(
            step.certificate.is_some(),
            "vetted steps carry a certificate"
        ),
    }
    step.lint_warnings.clone()
}

#[test]
fn lint_mode_matrix_dead_check_pl412() {
    // A bounded trigger range wide enough to swallow any reachable
    // cardinality: the check can never fire.
    let dead = |plan: &mut PhysNode| {
        for_each_check_spec(plan, &mut |spec| {
            spec.range = ValidityRange::new(0.0, 1e300);
        });
    };
    assert!(lint_warnings_for(LintMode::Off, dead).is_empty());
    for mode in [LintMode::Warn, LintMode::Enforce] {
        let warnings = lint_warnings_for(mode, dead);
        assert!(
            warnings.iter().any(|w| w.contains("PL412")),
            "{mode:?}: {warnings:?}"
        );
    }
}

#[test]
fn lint_mode_matrix_vacuous_check_pl413() {
    // A trigger range disjoint from every reachable cardinality: the
    // check always fires.
    let vacuous = |plan: &mut PhysNode| {
        for_each_check_spec(plan, &mut |spec| {
            spec.range = ValidityRange::new(1e300, 2e300);
            // Keep the estimate inside the rewritten range: the fixture
            // targets PL413 (reachability), not PL102 (self-consistency).
            spec.est_card = 1.5e300;
        });
    };
    assert!(lint_warnings_for(LintMode::Off, vacuous).is_empty());
    for mode in [LintMode::Warn, LintMode::Enforce] {
        let warnings = lint_warnings_for(mode, vacuous);
        assert!(
            warnings.iter().any(|w| w.contains("PL413")),
            "{mode:?}: {warnings:?}"
        );
    }
}

#[test]
fn lint_mode_matrix_coverage_hole_pl411() {
    assert!(lint_warnings_for(LintMode::Off, open_agg_coverage_hole).is_empty());
    for mode in [LintMode::Warn, LintMode::Enforce] {
        let warnings = lint_warnings_for(mode, open_agg_coverage_hole);
        assert!(
            warnings.iter().any(|w| w.contains("PL411")),
            "{mode:?}: {warnings:?}"
        );
    }
}

#[test]
fn interval_diagnostics_never_block_execution() {
    // PL41x findings are Warn severity by design: even Enforce mode must
    // execute a plan whose only findings are interval advisories.
    let warnings = lint_warnings_for(LintMode::Enforce, |p| {
        for_each_check_spec(p, &mut |spec| {
            spec.range = ValidityRange::new(0.0, 1e300);
        });
    });
    assert!(!warnings.is_empty());
}

// ---------------------------------------------------------------------
// Robustness-certificate snapshots: threads x morsel sizes
// ---------------------------------------------------------------------

/// Per-step certificates of one run under a given parallel configuration.
fn certificates(
    catalog: Catalog,
    spec: &QuerySpec,
    params: &Params,
    threads: usize,
    morsel_size: usize,
) -> Vec<String> {
    let mut config = PopConfig::default();
    config.optimizer.threads = threads;
    config.morsel_size = morsel_size;
    let exec = PopExecutor::new(catalog, config).unwrap();
    let res = exec.run(spec, params).unwrap();
    res.report
        .steps
        .iter()
        .map(|s| {
            s.certificate
                .as_ref()
                .expect("every vetted step carries a certificate")
                .render()
        })
        .collect()
}

fn assert_certificates_invariant(
    label: &str,
    catalog: &Catalog,
    spec: &QuerySpec,
    params: &Params,
) {
    let baseline = certificates(catalog.clone(), spec, params, 1, 1);
    assert!(!baseline.is_empty(), "{label}: no steps");
    for cert in &baseline {
        assert!(cert.starts_with("cert "), "{label}: {cert}");
    }
    for (threads, morsel) in [(1, 1024), (4, 1), (4, 1024)] {
        let got = certificates(catalog.clone(), spec, params, threads, morsel);
        assert_eq!(
            got, baseline,
            "{label}: certificate changed at threads={threads} morsel={morsel}"
        );
    }
}

#[test]
fn q10_certificates_are_thread_and_morsel_invariant() {
    let catalog = tpch_catalog(0.005).unwrap();
    let q = q10();
    // Quantity 25: mid selectivity, enough rows to form parallel regions.
    let params = Params::new(vec![Value::Int(25)]);
    assert_certificates_invariant("tpch/Q10", &catalog, &q, &params);
}

#[test]
fn dmv_certificates_are_thread_and_morsel_invariant() {
    let catalog = dmv_catalog(0.0003).unwrap();
    for q in dmv_queries() {
        assert_certificates_invariant(
            &format!("dmv/{}", q.name),
            &catalog,
            &q.spec,
            &Params::none(),
        );
    }
}
