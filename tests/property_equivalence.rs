//! End-to-end property test: for random databases and random
//! select-project-join queries, the engine must return exactly the rows a
//! brute-force reference evaluator computes — with POP disabled, with the
//! default configuration, and with a deliberately trigger-happy
//! configuration (fixed ×1.2 thresholds) that forces re-optimizations
//! mid-query. Progressive re-optimization must never change results.

use pop::{PopConfig, PopExecutor, ValidityMode};
use pop_expr::{BoundExpr, Expr, Params};
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{ColId, DataType, Schema, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Db {
    left: Vec<(i64, i64, i64)>, // (pk, fk-ish key, attr)
    right: Vec<(i64, i64)>,     // (key, attr)
}

fn arb_db() -> impl Strategy<Value = Db> {
    (
        prop::collection::vec((0i64..30, 0i64..8, -20i64..20), 1..60),
        prop::collection::vec((0i64..30, -20i64..20), 1..60),
    )
        .prop_map(|(l, r)| Db {
            left: l
                .into_iter()
                .enumerate()
                .map(|(i, (_, k, a))| (i as i64, k, a))
                .collect(),
            right: r,
        })
}

/// A small predicate grammar over (table 0: cols pk,key,attr).
#[derive(Debug, Clone)]
enum Pred {
    AttrLe(i64),
    AttrEq(i64),
    KeyIn(Vec<i64>),
    Conj(i64, i64), // attr <= a AND key >= b
    Disj(i64, i64), // attr = a OR key = b
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (-20i64..20).prop_map(Pred::AttrLe),
        (-20i64..20).prop_map(Pred::AttrEq),
        prop::collection::vec(0i64..8, 0..3).prop_map(Pred::KeyIn),
        ((-20i64..20), (0i64..8)).prop_map(|(a, b)| Pred::Conj(a, b)),
        ((-20i64..20), (0i64..8)).prop_map(|(a, b)| Pred::Disj(a, b)),
    ]
}

fn pred_expr(table: usize, p: &Pred) -> Expr {
    match p {
        Pred::AttrLe(a) => Expr::col(table, 2).le(Expr::lit(*a)),
        Pred::AttrEq(a) => Expr::col(table, 2).eq(Expr::lit(*a)),
        Pred::KeyIn(ks) => Expr::col(table, 1).in_list(ks.iter().map(|k| Value::Int(*k)).collect()),
        Pred::Conj(a, b) => Expr::col(table, 2)
            .le(Expr::lit(*a))
            .and(Expr::col(table, 1).ge(Expr::lit(*b))),
        Pred::Disj(a, b) => Expr::col(table, 2)
            .eq(Expr::lit(*a))
            .or(Expr::col(table, 1).eq(Expr::lit(*b))),
    }
}

fn build_catalog(db: &Db) -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "left",
        Schema::from_pairs(&[
            ("pk", DataType::Int),
            ("key", DataType::Int),
            ("attr", DataType::Int),
        ]),
        db.left
            .iter()
            .map(|(p, k, a)| vec![Value::Int(*p), Value::Int(*k), Value::Int(*a)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "right",
        Schema::from_pairs(&[("key", DataType::Int), ("attr", DataType::Int)]),
        db.right
            .iter()
            .map(|(k, a)| vec![Value::Int(*k), Value::Int(*a)])
            .collect(),
    )
    .unwrap();
    cat.create_index("right", "key", IndexKind::Hash).unwrap();
    cat.create_index("left", "key", IndexKind::Hash).unwrap();
    cat
}

fn build_query(p: &Pred) -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let l = b.table("left");
    let r = b.table("right");
    b.join(l, 1, r, 0);
    b.filter(l, pred_expr(l, p));
    b.project(&[(l, 0), (l, 2), (r, 1)]);
    b.build().unwrap()
}

/// Brute-force reference: filter with the same expression evaluator (so
/// predicate semantics are shared), then nested-loop join and project.
fn reference(db: &Db, p: &Pred) -> Vec<Vec<Value>> {
    let expr = pred_expr(0, &p.clone());
    let layout = [ColId::new(0, 0), ColId::new(0, 1), ColId::new(0, 2)];
    let bound = BoundExpr::bind(&expr, &layout).unwrap();
    let mut out = Vec::new();
    for (pk, k, a) in &db.left {
        let row = vec![Value::Int(*pk), Value::Int(*k), Value::Int(*a)];
        if !bound.passes(&row, &Params::none()).unwrap() {
            continue;
        }
        for (rk, ra) in &db.right {
            if rk == k {
                out.push(vec![Value::Int(*pk), Value::Int(*a), Value::Int(*ra)]);
            }
        }
    }
    out.sort();
    out
}

fn run_config(cat: Catalog, q: &pop::QuerySpec, cfg: PopConfig) -> Vec<Vec<Value>> {
    let exec = PopExecutor::new(cat, cfg).unwrap();
    let mut rows = exec.run(q, &Params::none()).unwrap().rows;
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_reference_under_all_configs(db in arb_db(), p in arb_pred()) {
        let expected = reference(&db, &p);
        let q = build_query(&p);

        // Static (no POP).
        let r1 = run_config(build_catalog(&db), &q, PopConfig::without_pop());
        prop_assert_eq!(&r1, &expected, "static run diverged");

        // Default POP.
        let mut cfg = PopConfig::default();
        cfg.optimizer.check_cost_threshold = 0.0;
        let r2 = run_config(build_catalog(&db), &q, cfg);
        prop_assert_eq!(&r2, &expected, "default POP run diverged");

        // Trigger-happy POP: tight fixed thresholds + all flavors, forcing
        // re-optimizations on ordinary estimation noise.
        let mut aggressive = PopConfig::default();
        aggressive.optimizer.check_cost_threshold = 0.0;
        aggressive.optimizer.validity_mode = ValidityMode::FixedFactor(1.2);
        aggressive.optimizer.flavors = pop::FlavorSet {
            lc: true,
            lcem: true,
            ecb: true,
            ecwc: true,
            ecdc: true,
        };
        let r3 = run_config(build_catalog(&db), &q, aggressive);
        prop_assert_eq!(&r3, &expected, "aggressive-reopt POP run diverged");
    }
}
