//! The paper's third estimation-error source (§1): **outdated
//! statistics**. The optimizer plans against statistics collected before
//! the data grew; POP's checkpoints catch the resulting misestimates at
//! runtime.

use pop::{FlavorSet, PopConfig, PopExecutor, StatsRegistry};
use pop_expr::Params;
use pop_plan::QueryBuilder;
use pop_storage::{Catalog, IndexKind};
use pop_types::{DataType, Schema, Value};

/// Build the catalog, analyze statistics, then grow the `events` table
/// 40x — without re-analyzing. The stats now say "500 events"; reality
/// says 20 500.
fn stale_setup() -> (Catalog, StatsRegistry) {
    let cat = Catalog::new();
    cat.create_table(
        "users",
        Schema::from_pairs(&[("uid", DataType::Int), ("segment", DataType::Int)]),
        (0..2000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 50)])
            .collect(),
    )
    .unwrap();
    cat.create_table(
        "events",
        Schema::from_pairs(&[("eid", DataType::Int), ("uid", DataType::Int)]),
        (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i % 500)])
            .collect(),
    )
    .unwrap();
    cat.create_index("events", "uid", IndexKind::Hash).unwrap();
    cat.create_index("users", "uid", IndexKind::Hash).unwrap();

    // RUNSTATS at the original size...
    let stats = StatsRegistry::new();
    stats.analyze_all(&cat).unwrap();

    // ...then the workload keeps inserting events (40x growth).
    let events = cat.table("events").unwrap();
    events
        .insert(
            (500..20_500)
                .map(|i| vec![Value::Int(i), Value::Int(i % 2000)])
                .collect(),
        )
        .unwrap();
    cat.refresh_indexes("events").unwrap();
    (cat, stats)
}

fn query() -> pop::QuerySpec {
    // No filters: believing EVENTS is tiny (500 rows), the optimizer
    // hashes it as the build side. In reality it has 20 500 rows — past
    // the memory budget, so the stale plan spills; the build-edge LC
    // check fires and the re-optimization flips the build side.
    let mut b = QueryBuilder::new();
    let u = b.table("users");
    let e = b.table("events");
    b.join(u, 0, e, 1);
    b.project(&[(u, 0), (e, 0)]);
    b.build().unwrap()
}

#[test]
fn stale_statistics_trigger_reoptimization() {
    let (cat, stats) = stale_setup();
    let mut cfg = PopConfig::default();
    cfg.cost_model.mem_rows = 4000.0;
    let exec = PopExecutor::with_stats(cat, stats, cfg);
    let res = exec.run(&query(), &Params::none()).unwrap();
    // Every event joins exactly one user.
    assert_eq!(res.rows.len(), 20_500);
    assert!(
        res.report.reopt_count >= 1,
        "stale stats should trip a checkpoint; steps: {}",
        res.report.summary()
    );
}

#[test]
fn stale_and_fresh_stats_agree_on_results() {
    let (cat, stale) = stale_setup();
    let fresh = StatsRegistry::new();
    fresh.analyze_all(&cat).unwrap();
    let q = query();
    let stale_exec = PopExecutor::with_stats(cat.clone(), stale, PopConfig::default());
    let fresh_exec = PopExecutor::with_stats(cat, fresh, PopConfig::default());
    let mut a = stale_exec.run(&q, &Params::none()).unwrap().rows;
    let mut b = fresh_exec.run(&q, &Params::none()).unwrap().rows;
    a.sort();
    b.sort();
    assert_eq!(a, b, "statistics must never affect results");
}

/// The drift scenario with the paper's safety net absent: every CHECK
/// flavor is off, so no checkpoint can catch the 41x growth. The
/// continuous suboptimality monitor still counts the drifted stream
/// against its stale envelope, flags the drift mid-run and forces the
/// early re-optimization — and switching the monitor off too is the
/// counterfactual where the stale plan runs blind to the end.
#[test]
fn drifting_stats_without_checks_are_caught_by_the_monitor() {
    let run = |monitor: bool| {
        let (cat, stats) = stale_setup();
        let mut cfg = PopConfig::default();
        cfg.optimizer.flavors = FlavorSet::none();
        cfg.monitor = monitor;
        cfg.sample_vet = false;
        let exec = PopExecutor::with_stats(cat, stats, cfg);
        exec.run(&query(), &Params::none()).unwrap()
    };

    let res = run(true);
    assert_eq!(res.rows.len(), 20_500, "drift must never cost rows");
    assert!(
        res.report.reopt_count >= 1,
        "monitor should flag the drift and re-optimize early:\n{}",
        res.report.summary()
    );
    let first = &res.report.steps[0];
    assert!(
        !first.monitors.is_empty(),
        "no suboptimality signal recorded:\n{}",
        res.report.summary()
    );
    let v = first.violation.as_ref().expect("first step must suspend");
    assert!(v.monitor, "violation must be monitor-flagged: {v:?}");

    // Counterfactual: no checks, no monitor — the drift goes unnoticed.
    let blind = run(false);
    assert_eq!(blind.rows.len(), 20_500);
    assert_eq!(
        blind.report.reopt_count,
        0,
        "nothing should observe the drift with both nets off:\n{}",
        blind.report.summary()
    );
}

#[test]
fn fresh_statistics_avoid_the_reopt() {
    let (cat, _stale) = stale_setup();
    let fresh = StatsRegistry::new();
    fresh.analyze_all(&cat).unwrap();
    let mut cfg = PopConfig::default();
    cfg.cost_model.mem_rows = 4000.0;
    let exec = PopExecutor::with_stats(cat, fresh, cfg);
    let res = exec.run(&query(), &Params::none()).unwrap();
    assert_eq!(
        res.report.reopt_count,
        0,
        "accurate statistics should plan right the first time:\n{}",
        res.report.summary()
    );
}
