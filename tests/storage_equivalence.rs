//! Backend equivalence: the paged backend (pager + buffer pool + B+tree +
//! WAL) must be invisible to query semantics.
//!
//! Running any workload on `PagedBackend` — even with a buffer pool far
//! smaller than the working set, so pages are constantly evicted and
//! re-read — has to produce byte-identical rows *in the same order*, the
//! same optimize–execute step sequence, the same CHECK and monitor
//! events, and the same robustness certificates as `MemBackend`, across
//! thread counts and morsel sizes. Both backends share one page-packing
//! rule, so page counts, page-aware cost estimates and charged work are
//! identical; only physical I/O (`RunReport::storage`) may differ, and it
//! is deliberately excluded from the comparison.

use pop::{PopConfig, PopExecutor, RunReport};
use pop_dmv::{dmv_catalog_with, dmv_queries};
use pop_expr::{Expr, Params};
use pop_guard::{FaultInjector, FaultPlan};
use pop_plan::{CostModel, QueryBuilder};
use pop_storage::{Catalog, IndexKind, StorageConfig, StorageKind};
use pop_tpch::{all_queries, tpch_catalog_with};
use pop_types::{DataType, Schema, Value};

const DMV_SCALE: f64 = 0.0003;
const TPCH_SF: f64 = 0.0005;
/// (threads, morsel size) combinations the comparison sweeps.
const COMBOS: [(usize, usize); 4] = [(1, 1), (1, 1024), (4, 1), (4, 1024)];

fn mem_storage() -> StorageConfig {
    StorageConfig {
        page_size: 1024,
        ..StorageConfig::default()
    }
}

/// Paged storage with a deliberately tiny buffer pool (16 frames) so the
/// working set of either benchmark does not fit and eviction is
/// exercised constantly.
fn paged_storage() -> StorageConfig {
    StorageConfig {
        kind: StorageKind::Paged,
        page_size: 1024,
        buffer_pool_bytes: 16 * 1024,
        ..StorageConfig::default()
    }
}

fn config(threads: usize, morsel: usize) -> PopConfig {
    let mut c = PopConfig::default();
    c.optimizer.threads = threads;
    c.morsel_size = morsel;
    // Both backends plan with the page-aware model: page counts are a
    // deterministic property of table contents, so estimates, plans and
    // charged work stay identical across backends.
    c.cost_model = CostModel::paged();
    c.storage = mem_storage(); // informational; the catalog is prebuilt
    c
}

/// Everything discrete about two run reports: step sequence, plan shapes,
/// check events, monitor signals and certificates. `RunReport::storage`
/// (physical I/O) is the one field allowed to differ.
fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.steps.len(), b.steps.len(), "{what}: step count differs");
    assert_eq!(a.reopt_count, b.reopt_count, "{what}: reopt count differs");
    assert_eq!(a.degraded, b.degraded, "{what}: degraded flag differs");
    for (i, (sa, sb)) in a.steps.iter().zip(b.steps.iter()).enumerate() {
        assert_eq!(sa.plan, sb.plan, "{what} step {i}: plan differs");
        assert_eq!(sa.shape, sb.shape, "{what} step {i}: shape differs");
        assert_eq!(
            sa.est_cost, sb.est_cost,
            "{what} step {i}: estimated cost differs"
        );
        assert_eq!(
            sa.rows_emitted, sb.rows_emitted,
            "{what} step {i}: rows_emitted differs"
        );
        assert_eq!(sa.mvs_used, sb.mvs_used, "{what} step {i}: mvs_used");
        assert_eq!(
            sa.check_events.len(),
            sb.check_events.len(),
            "{what} step {i}: event count differs"
        );
        for (ea, eb) in sa.check_events.iter().zip(sb.check_events.iter()) {
            assert_eq!(ea.check_id, eb.check_id, "{what} step {i}: check id");
            assert_eq!(ea.flavor, eb.flavor, "{what} step {i}: flavor");
            assert_eq!(ea.outcome, eb.outcome, "{what} step {i}: outcome");
            assert_eq!(
                ea.observed, eb.observed,
                "{what} step {i}: observed cardinality differs at check #{}",
                ea.check_id
            );
            assert_eq!(ea.signature, eb.signature, "{what} step {i}: signature");
        }
        assert_eq!(
            sa.monitors.len(),
            sb.monitors.len(),
            "{what} step {i}: monitor signal count differs"
        );
        for (ma, mb) in sa.monitors.iter().zip(sb.monitors.iter()) {
            assert_eq!(ma.path, mb.path, "{what} step {i}: monitor path");
            assert_eq!(ma.observed, mb.observed, "{what} step {i}: monitor rows");
            assert_eq!(ma.trip, mb.trip, "{what} step {i}: monitor trip");
        }
        assert_eq!(
            sa.monitors_installed, sb.monitors_installed,
            "{what} step {i}: monitors installed"
        );
        // Certificates render every proved property; string equality is
        // the certificate-hash comparison.
        let ca = sa.certificate.as_ref().map(ToString::to_string);
        let cb = sb.certificate.as_ref().map(ToString::to_string);
        assert_eq!(ca, cb, "{what} step {i}: certificate differs");
        match (&sa.violation, &sb.violation) {
            (None, None) => {}
            (Some(va), Some(vb)) => {
                assert_eq!(va.check_id, vb.check_id, "{what} step {i}: viol check");
                assert_eq!(va.observed, vb.observed, "{what} step {i}: viol observed");
                assert_eq!(va.monitor, vb.monitor, "{what} step {i}: viol monitor");
            }
            (x, y) => panic!("{what} step {i}: violation mismatch {x:?} vs {y:?}"),
        }
    }
}

/// Run a workload; rows are kept in emission order (NOT sorted) so
/// ordering differences fail the comparison.
fn run_workload(
    catalog: &Catalog,
    queries: &[(String, pop::QuerySpec)],
    threads: usize,
    morsel: usize,
) -> Vec<(Vec<Vec<Value>>, RunReport)> {
    let exec = PopExecutor::new(catalog.clone(), config(threads, morsel)).unwrap();
    queries
        .iter()
        .map(|(name, q)| {
            let res = exec
                .run(q, &Params::none())
                .unwrap_or_else(|e| panic!("{name} @ {threads}x{morsel} failed: {e}"));
            (res.rows, res.report)
        })
        .collect()
}

fn assert_backends_equivalent(
    mem: &Catalog,
    paged: &Catalog,
    queries: &[(String, pop::QuerySpec)],
    label: &str,
) {
    for (threads, morsel) in COMBOS {
        let a = run_workload(mem, queries, threads, morsel);
        let b = run_workload(paged, queries, threads, morsel);
        for (((rows_a, rep_a), (rows_b, rep_b)), (name, _)) in
            a.iter().zip(b.iter()).zip(queries.iter())
        {
            let what = format!("{label}/{name} @ {threads} thread(s), morsel {morsel}");
            assert_eq!(rows_a, rows_b, "{what}: rows differ across backends");
            assert_reports_equal(rep_a, rep_b, &what);
        }
    }
    // The tiny pool cannot hold the working set: eviction must have been
    // exercised (and physical I/O observed) on the paged side only.
    let io = paged.io_stats();
    assert!(
        io.evictions > 0,
        "{label}: expected buffer-pool evictions with a 16-frame pool, got {io:?}"
    );
    assert!(io.pool_misses > 0, "{label}: expected pool misses");
    assert_eq!(
        mem.io_stats(),
        pop_storage::IoStats::default(),
        "{label}: the mem backend must perform no physical I/O"
    );
}

#[test]
fn dmv_suite_matches_across_backends() {
    let queries: Vec<(String, pop::QuerySpec)> = dmv_queries()
        .into_iter()
        .map(|q| (q.name.clone(), q.spec))
        .collect();
    let mem = dmv_catalog_with(DMV_SCALE, mem_storage()).unwrap();
    let paged = dmv_catalog_with(DMV_SCALE, paged_storage()).unwrap();
    assert_backends_equivalent(&mem, &paged, &queries, "dmv");
}

#[test]
fn tpch_suite_matches_across_backends() {
    let queries: Vec<(String, pop::QuerySpec)> = all_queries()
        .into_iter()
        .map(|(name, spec)| (name.to_string(), spec))
        .collect();
    let mem = tpch_catalog_with(TPCH_SF, mem_storage()).unwrap();
    let paged = tpch_catalog_with(TPCH_SF, paged_storage()).unwrap();
    assert_backends_equivalent(&mem, &paged, &queries, "tpch");
}

// ---------------------------------------------------------------------
// WAL crash recovery through the catalog: a load torn mid-WAL-append
// loses exactly the torn batch; reopening replays the WAL, rebuilds the
// primary B+tree, and serves queries over the recovered prefix.
// ---------------------------------------------------------------------

fn kv_schema() -> Schema {
    Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)])
}

fn kv_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range
        .map(|i| vec![Value::Int(i), Value::str(format!("row {i}"))])
        .collect()
}

#[test]
fn wal_crash_recovery_reopens_with_replayed_rows_and_index() {
    let dir = std::env::temp_dir().join(format!("pop-eqv-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageConfig {
        kind: StorageKind::Paged,
        page_size: 512,
        dir: Some(dir.clone()),
        ..StorageConfig::default()
    };
    {
        let cat = Catalog::with_storage(storage.clone());
        // 100 checkpointed rows, with a persistent primary index.
        let t = cat.create_table("t", kv_schema(), kv_rows(0..100)).unwrap();
        cat.create_index("t", "a", IndexKind::Sorted).unwrap();
        // 50 more rows that live only in pages + WAL (no checkpoint).
        t.insert(kv_rows(100..150)).unwrap();
        // The next append tears mid-WAL-frame: the batch must fail...
        cat.storage()
            .arm_faults(FaultInjector::new(FaultPlan::parse_spec("torn@0").unwrap()));
        let err = t.insert(kv_rows(150..200)).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert_eq!(t.row_count(), 150, "torn batch must not become visible");
        // ...and the catalog drops without a checkpoint: simulated crash.
    }
    let cat = Catalog::with_storage(storage);
    let t = cat.open_table("t", kv_schema()).unwrap();
    assert_eq!(
        t.row_count(),
        150,
        "recovery keeps the durable prefix plus the WAL-replayed batch"
    );
    assert_eq!(t.snapshot()[149][0], Value::Int(149));
    // The primary B+tree was rebuilt during recovery; a Sorted index on
    // the same column reuses it and sees every recovered row.
    cat.create_index("t", "a", IndexKind::Sorted).unwrap();
    let idx = cat.find_index(t.id(), 0, true).unwrap();
    assert!(idx.is_persistent());
    assert_eq!(idx.probe(&Value::Int(149)).unwrap(), vec![149]);
    assert!(idx.probe(&Value::Int(150)).unwrap().is_empty());
    assert_eq!(
        idx.range(Some(&Value::Int(100)), None)
            .unwrap()
            .unwrap()
            .len(),
        50
    );
    drop(t);
    drop(cat);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// The page-aware cost model flips an access-path choice the flat model
// got wrong: a ~3% range predicate looks index-friendly when only row
// fetches are charged, but its scattered fetches touch nearly every page
// at the random-read multiplier — the sequential scan is cheaper.
// ---------------------------------------------------------------------

fn flip_db() -> Catalog {
    // 512-byte pages: ~20-25 of these rows per page, so the table spans
    // a few hundred pages and the Cardenas term bites.
    let cat = Catalog::with_storage(StorageConfig {
        page_size: 512,
        ..StorageConfig::default()
    });
    cat.create_table(
        "pts",
        Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]),
        (0..10_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 97)])
            .collect(),
    )
    .unwrap();
    cat.create_index("pts", "id", IndexKind::Sorted).unwrap();
    cat
}

fn range_3pct() -> pop::QuerySpec {
    let mut b = QueryBuilder::new();
    let p = b.table("pts");
    b.filter(
        p,
        Expr::col(p, 0).between(Expr::lit(0i64), Expr::lit(299i64)),
    );
    b.project(&[(p, 0), (p, 1)]);
    b.build().unwrap()
}

#[test]
fn page_aware_model_flips_index_choice_flat_model_got_wrong() {
    let cat = flip_db();
    // Precondition pinning the scenario: the flip inequality below holds
    // for any page count in this band (see CostModel::index_range_scan_cost).
    let pages = cat.table("pts").unwrap().page_count();
    assert!(
        (100..=1500).contains(&pages),
        "row encoding changed enough to move the flip band: {pages} pages"
    );
    let flat = PopExecutor::new(cat.clone(), PopConfig::default()).unwrap();
    let plan = flat.explain(&range_3pct(), &Params::none()).unwrap();
    assert!(
        plan.contains("IXSCAN"),
        "flat model charges only row fetches, so 3% looks index-friendly:\n{plan}"
    );
    let paged = PopExecutor::new(
        cat,
        PopConfig {
            cost_model: CostModel::paged(),
            ..PopConfig::default()
        },
    )
    .unwrap();
    let plan = paged.explain(&range_3pct(), &Params::none()).unwrap();
    assert!(
        !plan.contains("IXSCAN"),
        "page-aware model must prefer the sequential scan at 3%:\n{plan}"
    );
    // Truly selective predicates still use the index under the paged
    // model: the flip is a crossover, not a blanket penalty.
    let mut b = QueryBuilder::new();
    let p = b.table("pts");
    b.filter(
        p,
        Expr::col(p, 0).between(Expr::lit(0i64), Expr::lit(49i64)),
    );
    b.project(&[(p, 0)]);
    let narrow = b.build().unwrap();
    let plan = paged.explain(&narrow, &Params::none()).unwrap();
    assert!(
        plan.contains("IXSCAN"),
        "0.5% stays below the random-read breakeven:\n{plan}"
    );
}
