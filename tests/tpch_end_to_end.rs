//! End-to-end integration: the full TPC-H query suite through the POP
//! executor, with and without POP, checking result equivalence and
//! robustness behaviour.

use pop::{PopConfig, PopExecutor};
use pop_expr::Params;
use pop_tpch::{all_queries, extended_queries, q10, q10_selectivity_literal, tpch_catalog};
use pop_types::Value;

const SF: f64 = 0.0005; // 3000 lineitems: fast but structurally rich

fn executor(config: PopConfig) -> PopExecutor {
    PopExecutor::new(tpch_catalog(SF).unwrap(), config).unwrap()
}

/// Compare sorted result sets, tolerating float accumulation-order noise
/// (different plans sum in different orders).
fn assert_rows_equal(mut a: Vec<Vec<Value>>, mut b: Vec<Vec<Value>>, what: &str) {
    a.sort();
    b.sort();
    assert_eq!(a.len(), b.len(), "{what}: row count differs");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.len(), rb.len(), "{what}: arity differs");
        for (va, vb) in ra.iter().zip(rb.iter()) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    let tol = 1e-6 * (1.0 + x.abs().max(y.abs()));
                    assert!((x - y).abs() <= tol, "{what}: {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{what}: value differs"),
            }
        }
    }
}

#[test]
fn all_queries_run_with_and_without_pop_and_agree() {
    let with_pop = executor(PopConfig::default());
    let without = executor(PopConfig::without_pop());
    for (name, q) in extended_queries() {
        let a = with_pop
            .run(&q, &Params::none())
            .unwrap_or_else(|e| panic!("{name} with POP failed: {e}"));
        let b = without
            .run(&q, &Params::none())
            .unwrap_or_else(|e| panic!("{name} without POP failed: {e}"));
        assert_rows_equal(
            a.rows.clone(),
            b.rows.clone(),
            &format!("{name}: POP changed the result"),
        );
        assert_eq!(b.report.reopt_count, 0, "{name}: static run re-optimized");
    }
}

#[test]
fn q10_parameter_marker_binds_at_runtime() {
    let exec = executor(PopConfig::default());
    let q = q10();
    // quantity <= 0 selects nothing; <= 50 selects everything.
    let none = exec.run(&q, &Params::new(vec![Value::Int(0)])).unwrap();
    let all = exec.run(&q, &Params::new(vec![Value::Int(50)])).unwrap();
    assert!(none.rows.is_empty());
    assert!(!all.rows.is_empty());
}

#[test]
fn q10_large_actual_selectivity_triggers_reopt() {
    let exec = executor(PopConfig::default());
    let q = q10();
    // Default range selectivity is 1/3; binding 50 makes the predicate
    // pass everything (3x the estimate), stressing the NLJN outer.
    let res = exec.run(&q, &Params::new(vec![Value::Int(50)])).unwrap();
    // Results must match the literal-predicate run regardless of reopt.
    let lit = exec
        .run(&q10_selectivity_literal(50), &Params::none())
        .unwrap();
    assert_rows_equal(
        res.rows.clone(),
        lit.rows.clone(),
        "q10 at full selectivity",
    );
}

#[test]
fn q10_results_match_between_param_and_literal_at_midpoint() {
    let exec = executor(PopConfig::default());
    let res = exec
        .run(&q10(), &Params::new(vec![Value::Int(25)]))
        .unwrap();
    let lit = exec
        .run(&q10_selectivity_literal(25), &Params::none())
        .unwrap();
    assert_rows_equal(res.rows.clone(), lit.rows.clone(), "q10 at midpoint");
}

#[test]
fn pop_overhead_is_small_when_no_reopt_occurs() {
    let with_pop = executor(PopConfig::default());
    let without = executor(PopConfig::without_pop());
    // Aggregate over the suite: POP's checkpoint overhead should stay in
    // the few-percent band the paper reports (§5.2) for queries that do
    // not re-optimize.
    let mut pop_work = 0.0;
    let mut base_work = 0.0;
    for (_name, q) in all_queries() {
        let a = with_pop.run(&q, &Params::none()).unwrap();
        let b = without.run(&q, &Params::none()).unwrap();
        if a.report.reopt_count == 0 {
            pop_work += a.report.total_work;
            base_work += b.report.total_work;
        }
    }
    assert!(base_work > 0.0);
    let overhead = pop_work / base_work;
    assert!(
        (0.99..1.25).contains(&overhead),
        "checkpoint overhead out of band: {overhead}"
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let exec = executor(PopConfig::default());
    let (_, q) = &all_queries()[1]; // Q3
    let a = exec.run(q, &Params::none()).unwrap();
    let b = exec.run(q, &Params::none()).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.report.total_work, b.report.total_work);
}
